"""SlabAlloc: the paper's warp-synchronous dynamic slab allocator (Section V).

Memory is organized hierarchically: ``num_super_blocks`` super blocks, each
divided into ``num_memory_blocks`` memory blocks, each holding
``units_per_block`` (default 1024) fixed-size 128-byte memory units (slabs).
Availability of the 1024 units of a memory block is tracked by 32 × 32-bit
bitmap words — exactly one word per warp lane, so a warp can cache its
*resident block*'s entire bitmap in registers.

Allocation protocol (warp-cooperative):

1. Every warp owns a resident memory block, chosen by hashing
   ``(global warp id, resident-change attempt)`` into a (super block, memory
   block) pair; the warp reads the block's 32 bitmap words with a single
   coalesced access and caches them in registers.
2. On an allocation request, lanes inspect their cached bitmap word, announce
   free units with a ballot, and the first lane with a free unit attempts to
   claim it by atomically OR-ing the corresponding bit into the *global*
   bitmap word.
3. If the bit was already set (another warp claimed it first), the lane
   refreshes its cached word from the atomic's return value and the warp
   retries.  If the whole resident block is full, the warp performs a
   *resident change*: it re-hashes to a new block and reads that block's
   bitmap (one coalesced access).
4. After ``growth_threshold`` resident changes within a single request, the
   allocator adds super blocks (up to the 8-bit addressing limit) and the hash
   range grows accordingly.

Deallocation atomically clears the unit's bit (and, in this simulation,
re-initializes the unit's words to ``EMPTY_KEY`` so a recycled slab reads as
empty, which the CUDA implementation achieves by memsetting pools).

Addresses are the 32-bit layouts of :mod:`repro.core.address`.  The regular
allocator stores each super block's 64-bit base pointer in shared memory, so
every address decode on a lookup path costs one shared-memory read; the
*light* variant (:class:`repro.core.slab_alloc_light.SlabAllocLight`) places
all super blocks in one contiguous array and skips that read at the price of a
4 GB capacity limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import address as addr
from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.hashing import hash_pair
from repro.gpusim.device import Device
from repro.gpusim.errors import AllocationError, SlabAllocExhausted
from repro.gpusim.intrinsics import ballot_from_bools, first_set_lane
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.warp import Warp

__all__ = ["SlabAlloc", "ResidentBlock"]

_FULL_WORD = 0xFFFFFFFF
_BITMAP_WORDS = 32


@dataclass
class ResidentBlock:
    """Per-warp allocator state: the resident block and its register-cached bitmap."""

    super_block: int
    block: int
    cached_bitmap: np.ndarray
    attempt: int = 0
    changes_this_request: int = field(default=0)


class SlabAlloc:
    """Warp-synchronous allocator of fixed-size 128-byte slabs.

    Parameters
    ----------
    device:
        The simulated device whose counters receive the allocator's events.
    config:
        Hierarchy sizing; defaults to the paper's 32 × 256 × 1024 configuration.
    slab_words:
        Words per memory unit (32 words = 128 bytes).
    seed:
        Seed mixed into the resident-block hash functions.
    light:
        ``True`` selects the SlabAlloc-light address decode (no shared-memory
        read per lookup); see :class:`repro.core.slab_alloc_light.SlabAllocLight`.
    """

    def __init__(
        self,
        device: Device,
        config: SlabAllocConfig | None = None,
        *,
        slab_words: int = C.SLAB_WORDS,
        seed: int = 0,
        light: bool = False,
    ) -> None:
        self.device = device
        self.mem = GlobalMemory(device.counters)
        self.config = config or SlabAllocConfig()
        self.slab_words = int(slab_words)
        self.seed = int(seed)
        self.light = bool(light)

        #: Current number of super blocks (grows up to config.max_super_blocks).
        self.num_super_blocks = self.config.num_super_blocks
        #: Bitmap storage, one (num_memory_blocks, 32) array per super block.
        self._bitmaps: List[np.ndarray] = [
            self._new_bitmap() for _ in range(self.num_super_blocks)
        ]
        #: Lazily materialized unit storage, one contiguous zero-backed array
        #: per super block (matching the CUDA code's one cudaMalloc per super
        #: block).  Rows are ``block * units_per_block + unit``; keeping every
        #: slab of a super block in ONE ndarray keeps the store lists that
        #: gather_views hands to the vectorized backend short, where
        #: per-memory-block arrays fragmented them into hundreds of stores.
        self._super_stores: Dict[int, np.ndarray] = {}
        #: Per-warp resident blocks.
        self._resident: Dict[int, ResidentBlock] = {}
        #: Number of currently allocated units (host-side bookkeeping).
        self._allocated_units = 0
        #: Optional fault hook (a :class:`repro.faults.FaultPlan` or scoped
        #: view); consulted at the ``alloc.warp_allocate`` site when set.
        self.faults = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def warp_allocate(self, warp: Warp) -> int:
        """Allocate one memory unit on behalf of ``warp``; returns its 32-bit address.

        This is the ``SlabAlloc::warp_allocate()`` of the paper's pseudocode:
        the whole warp cooperates, and in the uncontended case the allocation
        costs exactly one 32-bit atomic operation.
        """
        if self.faults is not None:
            # Deterministic fault site: a plan can exhaust the allocator on
            # demand (raises SlabAllocExhausted) or slow a request down.
            self.faults.check("alloc.warp_allocate")
        state = self._resident_state(warp)
        state.changes_this_request = 0

        while True:
            warp.charge(C.ALLOC_ATTEMPT_INSTRUCTIONS)
            free_mask = warp.ballot(state.cached_bitmap != _FULL_WORD)
            lane = first_set_lane(free_mask)
            if lane < 0:
                state = self._change_resident(warp, state)
                continue

            cached_word = int(state.cached_bitmap[lane])
            bit = first_set_lane(~cached_word & _FULL_WORD)
            unit = lane * 32 + bit
            bitmap_store = self._bitmaps[state.super_block]
            old = self.mem.atomic_or32(bitmap_store, (state.block, lane), 1 << bit)
            state.cached_bitmap[lane] = np.uint32(old | (1 << bit))
            if old & (1 << bit):
                # Another warp claimed this unit since our last bitmap read;
                # the cached word is now refreshed, retry.
                continue

            self.device.counters.allocations += 1
            self._allocated_units += 1
            # Hand the slab out reading all-EMPTY.  Unit storage is backed by
            # lazily materialized zero pages (see _super_store), so the empty
            # pattern is written per 128-byte slab at allocation time instead
            # of per block at first touch — a warp's resident block hashes
            # anywhere in the pool, so eager whole-block fills made nearly
            # every allocation fault in fresh pages.
            self._super_store(state.super_block)[self._row(state.block, unit)] = C.EMPTY_KEY
            return addr.make_address(state.super_block, state.block, unit)

    def deallocate(self, warp: Warp, address: int) -> None:
        """Return a memory unit to the allocator (atomically clears its bitmap bit)."""
        super_block, block, unit = addr.decode_address(address)
        self._check_bounds(super_block, block, unit)
        warp.charge(C.DEALLOC_INSTRUCTIONS)
        lane, bit = divmod(unit, 32)
        bitmap_store = self._bitmaps[super_block]
        old = self.mem.atomic_and32(bitmap_store, (block, lane), _FULL_WORD ^ (1 << bit))
        if not old & (1 << bit):
            raise AllocationError(
                f"double free of slab address 0x{address:08X} (unit was not allocated)"
            )
        self.device.counters.deallocations += 1
        self._allocated_units -= 1

        # Recycle the unit as an empty slab (the CUDA code memsets pools).
        store = self._super_stores.get(super_block)
        row = self._row(block, unit)
        if store is not None and np.any(store[row] != C.EMPTY_KEY):
            self.mem.write_slab(store, row, np.full(self.slab_words, C.EMPTY_KEY, np.uint32))

        # Invalidate any stale register caches of this word held by warps
        # resident in the same block (they would refresh on their next failed
        # atomic anyway; clearing here keeps the simulation conservative).
        for resident in self._resident.values():
            if resident.super_block == super_block and resident.block == block:
                resident.cached_bitmap[lane] &= np.uint32(~(1 << bit) & _FULL_WORD)

    def slab_view(self, address: int) -> Tuple[np.ndarray, int]:
        """Return ``(unit_store, row)`` such that ``unit_store[row]`` is the slab's words."""
        super_block, block, unit = addr.decode_address(address)
        self._check_bounds(super_block, block, unit)
        return self._super_store(super_block), self._row(block, unit)

    def gather_views(self, addresses: np.ndarray) -> Tuple[List[np.ndarray], np.ndarray, np.ndarray]:
        """Vectorized :meth:`slab_view`: resolve many 32-bit addresses at once.

        Returns ``(stores, store_idx, rows)`` where slab ``i`` lives at
        ``stores[store_idx[i]][rows[i]]``.  Host-side (uncounted) — used by the
        vectorized bulk backend and the table introspection helpers.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        units = addresses & ((1 << addr.UNIT_BITS) - 1)
        blocks = (addresses >> addr.UNIT_BITS) & ((1 << addr.BLOCK_BITS) - 1)
        supers = (addresses >> (addr.UNIT_BITS + addr.BLOCK_BITS)) & (
            (1 << addr.SUPER_BLOCK_BITS) - 1
        )
        if addresses.size:
            if int(supers.max()) >= self.num_super_blocks:
                raise AllocationError("gather_views: super block out of range")
            if int(blocks.max()) >= self.config.num_memory_blocks:
                raise AllocationError("gather_views: memory block out of range")
            if int(units.max()) >= self.config.units_per_block:
                raise AllocationError("gather_views: memory unit out of range")
        stores: List[np.ndarray] = []
        store_idx = np.empty(len(addresses), dtype=np.int64)
        rows = blocks * self.config.units_per_block + units
        for super_block in np.unique(supers):
            mask = supers == super_block
            store_idx[mask] = len(stores)
            stores.append(self._super_store(int(super_block)))
        return stores, store_idx, rows

    def charge_address_decode(self) -> None:
        """Charge the cost of turning a 32-bit layout into a 64-bit pointer.

        The regular SlabAlloc keeps each super block's base pointer in shared
        memory, so every decode on a lookup path costs one shared-memory read
        plus the layout unpacking arithmetic; SlabAlloc-light stores everything
        contiguously so the decode is a single add off one global base pointer.
        This is the difference behind the paper's "up to 25 % faster searches
        with SlabAlloc-light" observation.
        """
        if self.light:
            self.device.counters.warp_instructions += 1
        else:
            self.mem.shared_read()
            self.device.counters.warp_instructions += 8

    def is_allocated(self, address: int) -> bool:
        """True if the unit at ``address`` is currently allocated."""
        super_block, block, unit = addr.decode_address(address)
        self._check_bounds(super_block, block, unit)
        lane, bit = divmod(unit, 32)
        return bool(int(self._bitmaps[super_block][block, lane]) & (1 << bit))

    # ------------------------------------------------------------------ #
    # State export / restore (snapshot hooks, see repro.persist.snapshot)
    # ------------------------------------------------------------------ #

    def export_units(self) -> Tuple[np.ndarray, np.ndarray]:
        """Every allocated unit's ``(addresses, words)``, in address order.

        Host-side and uncounted (like the other introspection helpers).  The
        pair fully determines the allocator's observable state: bitmaps are
        exactly the set bits of ``addresses`` (deallocation re-initializes
        units, so unallocated units always read as empty slabs), and
        ``words[i]`` is the 32-word content of the slab at ``addresses[i]``.
        """
        per_super: List[np.ndarray] = []
        for super_block, bitmap in enumerate(self._bitmaps):
            blocks, lanes, bits = np.nonzero(
                (bitmap[:, :, None] >> np.arange(32, dtype=np.uint32)) & np.uint32(1)
            )
            units = lanes * 32 + bits
            # _new_bitmap marks non-existent tail units as permanently
            # allocated; they are padding, not real units.
            real = units < self.config.units_per_block
            addresses = (
                (super_block << (addr.UNIT_BITS + addr.BLOCK_BITS))
                | (blocks[real] << addr.UNIT_BITS)
                | units[real]
            )
            per_super.append(addresses.astype(np.int64))
        addresses = (
            np.sort(np.concatenate(per_super)) if per_super else np.empty(0, np.int64)
        )
        words = np.empty((len(addresses), self.slab_words), dtype=np.uint32)
        if len(addresses):
            stores, store_idx, rows = self.gather_views(addresses)
            for index, store in enumerate(stores):
                mask = store_idx == index
                words[mask] = store[rows[mask]]
        return addresses.astype(np.uint32), words

    def restore_units(
        self,
        addresses: np.ndarray,
        words: np.ndarray,
        *,
        num_super_blocks: Optional[int] = None,
    ) -> None:
        """Rebuild a pristine allocator's state from :meth:`export_units` output.

        Sets the bitmap bit and writes the slab words of every address, and
        grows to ``num_super_blocks`` first so a snapshot taken after
        allocator growth restores to the same hash range.  Host-side and
        uncounted; must run on a freshly constructed allocator.
        """
        if self._allocated_units:
            raise AllocationError(
                "restore_units needs a pristine allocator "
                f"({self._allocated_units} units already allocated)"
            )
        if num_super_blocks is not None:
            if num_super_blocks < self.num_super_blocks:
                raise AllocationError(
                    f"cannot shrink the allocator to {num_super_blocks} super blocks "
                    f"(configured with {self.num_super_blocks})"
                )
            while self.num_super_blocks < num_super_blocks:
                self._bitmaps.append(self._new_bitmap())
                self.num_super_blocks += 1
        addresses = np.asarray(addresses, dtype=np.int64)
        words = np.asarray(words, dtype=np.uint32)
        if words.shape != (len(addresses), self.slab_words):
            raise AllocationError(
                f"restore_units: words shape {words.shape} does not match "
                f"{(len(addresses), self.slab_words)}"
            )
        if not len(addresses):
            self._allocated_units = 0
            return
        if np.unique(addresses).size != addresses.size:
            raise AllocationError("restore_units: duplicate addresses in input")
        units = addresses & ((1 << addr.UNIT_BITS) - 1)
        blocks = (addresses >> addr.UNIT_BITS) & ((1 << addr.BLOCK_BITS) - 1)
        supers = addresses >> (addr.UNIT_BITS + addr.BLOCK_BITS)
        if (
            int(supers.max()) >= self.num_super_blocks
            or int(blocks.max()) >= self.config.num_memory_blocks
            or int(units.max()) >= self.config.units_per_block
        ):
            raise AllocationError("restore_units: address out of range")
        # Vectorized mirror of export_units: set the bitmap bits per super
        # block, then scatter the slab words per (super block, memory block).
        lanes, bits = np.divmod(units, 32)
        for super_block in np.unique(supers):
            mask = supers == super_block
            np.bitwise_or.at(
                self._bitmaps[int(super_block)],
                (blocks[mask], lanes[mask]),
                (np.uint32(1) << bits[mask].astype(np.uint32)),
            )
        for super_block in np.unique(supers):
            mask = supers == super_block
            store = self._super_store(int(super_block))
            store[blocks[mask] * self.config.units_per_block + units[mask]] = words[mask]
        self._allocated_units = len(addresses)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def allocated_units(self) -> int:
        """Number of memory units currently allocated."""
        return self._allocated_units

    @property
    def capacity_units(self) -> int:
        """Total units addressable with the current number of super blocks."""
        return self.num_super_blocks * self.config.units_per_super_block

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_units * 4 * self.slab_words

    @property
    def allocated_bytes(self) -> int:
        return self._allocated_units * 4 * self.slab_words

    def occupancy(self) -> float:
        """Fraction of the allocator's capacity currently in use."""
        return self._allocated_units / self.capacity_units

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _new_bitmap(self) -> np.ndarray:
        bitmap = np.zeros((self.config.num_memory_blocks, _BITMAP_WORDS), dtype=np.uint32)
        usable_words = self.config.units_per_block // 32
        if usable_words < _BITMAP_WORDS:
            # Mark the non-existent tail units as permanently allocated.
            bitmap[:, usable_words:] = _FULL_WORD
        return bitmap

    def _row(self, block: int, unit: int) -> int:
        """Flat row of ``(block, unit)`` within its super block's store."""
        return block * self.config.units_per_block + unit

    def _super_store(self, super_block: int) -> np.ndarray:
        store = self._super_stores.get(super_block)
        if store is None:
            # Zero-backed (calloc) so materializing a super block costs no
            # page touches; physical pages fault in only for units actually
            # used.  The EMPTY_KEY pattern every reader expects is written
            # per slab by warp_allocate when the unit is handed out.
            store = np.zeros(
                (
                    self.config.num_memory_blocks * self.config.units_per_block,
                    self.slab_words,
                ),
                dtype=np.uint32,
            )
            self._super_stores[super_block] = store
        return store

    def _check_bounds(self, super_block: int, block: int, unit: int) -> None:
        if super_block >= self.num_super_blocks:
            raise AllocationError(f"super block {super_block} does not exist")
        if block >= self.config.num_memory_blocks:
            raise AllocationError(f"memory block {block} does not exist")
        if unit >= self.config.units_per_block:
            raise AllocationError(f"memory unit {unit} does not exist")

    def _resident_state(self, warp: Warp) -> ResidentBlock:
        state = self._resident.get(warp.warp_id)
        if state is None:
            state = self._assign_resident(warp, attempt=0)
            self._resident[warp.warp_id] = state
        return state

    def _assign_resident(self, warp: Warp, attempt: int) -> ResidentBlock:
        super_block = hash_pair(warp.warp_id, attempt, self.num_super_blocks, seed=self.seed)
        block = hash_pair(
            warp.warp_id, attempt, self.config.num_memory_blocks, seed=self.seed + 1
        )
        # Reading the new resident block's bitmaps is one coalesced access.
        cached = self.mem.read_slab(self._bitmaps[super_block], block)
        return ResidentBlock(super_block=super_block, block=block, cached_bitmap=cached, attempt=attempt)

    def _change_resident(self, warp: Warp, state: ResidentBlock) -> ResidentBlock:
        self.device.counters.resident_changes += 1
        changes = state.changes_this_request + 1
        if changes >= self.config.growth_threshold or self._allocated_units >= self.capacity_units:
            # The paper: after a threshold number of resident changes, add new
            # super blocks and reflect them in the hash functions.
            self._grow()
            changes = 0
        if self._allocated_units >= self.capacity_units:
            raise SlabAllocExhausted(
                "SlabAlloc is out of memory: "
                f"{self._allocated_units}/{self.capacity_units} units allocated"
            )
        new_state = self._assign_resident(warp, attempt=state.attempt + 1)
        new_state.changes_this_request = changes
        self._resident[warp.warp_id] = new_state
        return new_state

    def _grow(self) -> None:
        """Add super blocks (the paper's growth path), if addressing allows it."""
        if self.num_super_blocks >= self.config.max_super_blocks:
            return
        additional = min(self.num_super_blocks, self.config.max_super_blocks - self.num_super_blocks)
        for _ in range(additional):
            self._bitmaps.append(self._new_bitmap())
        self.num_super_blocks += additional
