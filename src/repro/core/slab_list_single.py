"""A standalone slab list with a host-friendly API.

The slab list is a contribution of the paper in its own right (Section III-A):
a lock-free linked list whose nodes are 128-byte slabs operated on by whole
warps.  :class:`SlabList` wraps a one-bucket
:class:`~repro.core.slab_list.SlabListCollection` behind a container-style
interface so it can be used (and studied) independently of the hash table:
operations are grouped into warps of up to 32 and executed with the same
warp-cooperative procedures the slab hash uses.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import constants as C
from repro.core.config import SlabAllocConfig, SlabConfig
from repro.core.flush import FlushResult, flush_bucket
from repro.core.hashing import is_user_key
from repro.core.slab_alloc import SlabAlloc
from repro.core.slab_list import SlabListCollection
from repro.gpusim.device import Device
from repro.gpusim.scheduler import run_sequential
from repro.gpusim.warp import WARP_SIZE, Warp

__all__ = ["SlabList"]


class SlabList:
    """A single warp-cooperative slab list (key-value or key-only).

    Parameters
    ----------
    device:
        Simulated device; a fresh one is created when omitted.
    key_value:
        Store 64-bit key-value entries (default) or 32-bit keys only.
    unique_keys:
        ``True`` gives REPLACE semantics, ``False`` allows duplicates.
    alloc / alloc_config:
        Share an existing allocator or size a new one.
    """

    def __init__(
        self,
        *,
        device: Optional[Device] = None,
        key_value: bool = True,
        unique_keys: bool = True,
        alloc: Optional[SlabAlloc] = None,
        alloc_config: Optional[SlabAllocConfig] = None,
        seed: int = 0,
    ) -> None:
        self.device = device or Device()
        self.config = SlabConfig(key_value=key_value, unique_keys=unique_keys)
        if alloc is None:
            alloc = SlabAlloc(self.device, alloc_config or SlabAllocConfig(), seed=seed)
        self.alloc = alloc
        self.lists = SlabListCollection(self.device, alloc, 1, self.config)
        self._warp_counter = 0

    # ------------------------------------------------------------------ #
    # Internal plumbing
    # ------------------------------------------------------------------ #

    def _next_warp(self) -> Warp:
        warp = Warp(self._warp_counter, self.device.counters)
        self._warp_counter += 1
        return warp

    @staticmethod
    def _chunks(count: int) -> Iterator[Tuple[int, int]]:
        for start in range(0, count, WARP_SIZE):
            yield start, min(start + WARP_SIZE, count)

    def _lane_arrays(
        self, keys: np.ndarray, values: Optional[np.ndarray], start: int, end: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
        span = end - start
        is_active = np.zeros(WARP_SIZE, dtype=bool)
        is_active[:span] = True
        lane_keys = np.full(WARP_SIZE, C.EMPTY_KEY, dtype=np.uint32)
        lane_keys[:span] = keys[start:end]
        lane_buckets = np.zeros(WARP_SIZE, dtype=np.int64)
        lane_values = None
        if self.config.key_value:
            lane_values = np.full(WARP_SIZE, C.EMPTY_VALUE, dtype=np.uint32)
            if values is not None:
                lane_values[:span] = values[start:end]
        return is_active, lane_buckets, lane_keys, lane_values

    def _validate(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size and int(keys.max()) >= C.MAX_USER_KEY:
            raise ValueError("keys must avoid the two reserved 32-bit values")
        return keys.astype(np.uint32)

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #

    def insert(self, key: int, value: Optional[int] = None) -> None:
        """Insert one element (REPLACE in unique mode, INSERT otherwise)."""
        self.extend([key], None if value is None else [value])

    def extend(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> None:
        """Insert a batch of elements, 32 per warp."""
        keys = self._validate(keys)
        if self.config.key_value:
            if values is None:
                raise ValueError("key-value mode requires values")
            values = np.asarray(values, dtype=np.uint32)
            if values.shape != keys.shape:
                raise ValueError("keys and values must have the same length")
        op = self.lists.warp_replace if self.config.unique_keys else self.lists.warp_insert
        self.device.launch_kernel()
        for start, end in self._chunks(len(keys)):
            warp = self._next_warp()
            is_active, buckets, lane_keys, lane_values = self._lane_arrays(keys, values, start, end)
            run_sequential([op(warp, is_active, buckets, lane_keys, lane_values)])

    def delete(self, key: int) -> bool:
        """Delete the least-recent occurrence of ``key``; True if one was removed."""
        keys = self._validate([key])
        warp = self._next_warp()
        is_active, buckets, lane_keys, _ = self._lane_arrays(keys, None, 0, 1)
        out = np.zeros(WARP_SIZE, dtype=np.int64)
        self.device.launch_kernel()
        run_sequential([self.lists.warp_delete(warp, is_active, buckets, lane_keys, out)])
        return bool(out[0])

    def delete_all(self, key: int) -> int:
        """Delete every occurrence of ``key``; returns the number removed."""
        keys = self._validate([key])
        warp = self._next_warp()
        is_active, buckets, lane_keys, _ = self._lane_arrays(keys, None, 0, 1)
        out = np.zeros(WARP_SIZE, dtype=np.int64)
        self.device.launch_kernel()
        run_sequential([self.lists.warp_delete_all(warp, is_active, buckets, lane_keys, out)])
        return int(out[0])

    def flush(self) -> FlushResult:
        """Compact the list, releasing slabs that only hold tombstones."""
        self.device.launch_kernel()
        return flush_bucket(self.lists, self._next_warp(), 0)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def search(self, key: int) -> Optional[int]:
        """Value stored under ``key`` (the key itself in key-only mode), or None."""
        keys = self._validate([key])
        warp = self._next_warp()
        is_active, buckets, lane_keys, _ = self._lane_arrays(keys, None, 0, 1)
        out = np.full(WARP_SIZE, C.SEARCH_NOT_FOUND, dtype=np.uint32)
        self.device.launch_kernel()
        run_sequential([self.lists.warp_search(warp, is_active, buckets, lane_keys, out)])
        return None if int(out[0]) == C.SEARCH_NOT_FOUND else int(out[0])

    def search_many(self, keys: Sequence[int]) -> np.ndarray:
        """Bulk search; SEARCH_NOT_FOUND marks missing keys."""
        keys = self._validate(keys)
        results = np.full(len(keys), C.SEARCH_NOT_FOUND, dtype=np.uint32)
        self.device.launch_kernel()
        for start, end in self._chunks(len(keys)):
            warp = self._next_warp()
            is_active, buckets, lane_keys, _ = self._lane_arrays(keys, None, start, end)
            out = np.full(WARP_SIZE, C.SEARCH_NOT_FOUND, dtype=np.uint32)
            run_sequential([self.lists.warp_search(warp, is_active, buckets, lane_keys, out)])
            results[start:end] = out[: end - start]
        return results

    def search_all(self, key: int) -> List[int]:
        """Every value stored under ``key`` (duplicates mode)."""
        keys = self._validate([key])
        warp = self._next_warp()
        is_active, buckets, lane_keys, _ = self._lane_arrays(keys, None, 0, 1)
        out: List[List[int]] = [[] for _ in range(WARP_SIZE)]
        self.device.launch_kernel()
        run_sequential([self.lists.warp_search_all(warp, is_active, buckets, lane_keys, out)])
        return out[0]

    def __contains__(self, key: int) -> bool:
        return is_user_key(key) and self.search(int(key)) is not None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.lists.live_items(0))

    def items(self) -> List[Tuple[int, Optional[int]]]:
        """All stored (key, value) pairs in traversal order."""
        return self.lists.live_items(0)

    def __iter__(self) -> Iterable[int]:
        return iter(key for key, _ in self.items())

    def slab_count(self) -> int:
        """Number of slabs in the chain (including the base slab)."""
        return self.lists.slab_count(0)

    def memory_utilization(self) -> float:
        """Stored data bytes over occupied slab bytes (paper's metric)."""
        return (len(self) * self.config.element_bytes) / (self.slab_count() * C.SLAB_BYTES)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "key-value" if self.config.key_value else "key-only"
        return f"SlabList({mode}, unique={self.config.unique_keys}, elements={len(self)}, slabs={self.slab_count()})"
