"""FLUSH: compaction of slab lists (Section IV-C.4).

Deletions in the slab hash only mark elements as deleted, so over time a
bucket's slab list may occupy more slabs than its live elements need.  FLUSH
takes a bucket, compacts all live elements into the minimum number of slabs
(base slab first, then as many chained slabs as required, reusing the bucket's
existing slabs in order) and deallocates the slabs that become empty so
SlabAlloc can hand them out again.

As in the paper, FLUSH is a separate "kernel": it must not run concurrently
with other operations on the same bucket, so it is implemented as plain
(non-generator) host-driven code that still reports every slab read/write and
deallocation to the device counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core import constants as C
from repro.core.slab_list import SlabListCollection
from repro.gpusim.warp import Warp

__all__ = ["FlushResult", "flush_bucket", "flush_all"]


@dataclass(frozen=True)
class FlushResult:
    """Outcome of compacting one bucket."""

    bucket: int
    live_elements: int
    slabs_before: int
    slabs_after: int
    slabs_released: int


def flush_bucket(lists: SlabListCollection, warp: Warp, bucket: int) -> FlushResult:
    """Compact one bucket's slab list and release its now-empty slabs."""
    if not 0 <= bucket < lists.num_lists:
        raise ValueError(f"bucket {bucket} out of range for {lists.num_lists} lists")
    cfg = lists.config
    mem = lists.mem

    chain = lists.chain_addresses(bucket)
    slabs_before = 1 + len(chain)

    # Pass 1: the warp reads every slab in the chain and gathers live elements.
    live: List[Tuple[int, Optional[int]]] = []
    for store, row, _words in lists.iter_slab_words(bucket):
        warp.charge(C.FLUSH_SLAB_INSTRUCTIONS)
        words = mem.read_slab(store, row)
        for lane in cfg.key_lanes:
            key = int(words[lane])
            if key in (C.EMPTY_KEY, C.DELETED_KEY):
                continue
            value = int(words[lane + 1]) if cfg.key_value else None
            live.append((key, value))

    # How many slabs the live elements actually need (always at least the base).
    per_slab = cfg.elements_per_slab
    needed = max(1, -(-len(live) // per_slab))
    keep = chain[: needed - 1]
    release = chain[needed - 1:]

    # Pass 2: rewrite the kept slabs with the compacted contents.
    stride = cfg.lane_stride
    for slab_index in range(needed):
        words = np.full(C.SLAB_WORDS, C.EMPTY_KEY, dtype=np.uint32)
        chunk = live[slab_index * per_slab : (slab_index + 1) * per_slab]
        for i, (key, value) in enumerate(chunk):
            lane = i * stride
            words[lane] = key
            if cfg.key_value:
                words[lane + 1] = value
        if slab_index < needed - 1:
            words[C.ADDRESS_LANE] = keep[slab_index] if slab_index < len(keep) else C.EMPTY_POINTER
        else:
            words[C.ADDRESS_LANE] = C.EMPTY_POINTER
        if slab_index == 0:
            store, row = lists.base_slabs, bucket
        else:
            store, row = lists.alloc.slab_view(keep[slab_index - 1])
        warp.charge(C.FLUSH_SLAB_INSTRUCTIONS)
        mem.write_slab(store, row, words)

    # Pass 3: release the slabs that are no longer needed.
    for address in release:
        lists.alloc.deallocate(warp, address)

    return FlushResult(
        bucket=bucket,
        live_elements=len(live),
        slabs_before=slabs_before,
        slabs_after=needed,
        slabs_released=len(release),
    )


def flush_all(
    lists: SlabListCollection,
    warp: Warp,
    buckets: Optional[List[int]] = None,
) -> List[FlushResult]:
    """Compact a set of buckets (all of them by default) in one kernel."""
    lists.device.launch_kernel()
    targets = range(lists.num_lists) if buckets is None else buckets
    return [flush_bucket(lists, warp, bucket) for bucket in targets]
