"""32-bit slab address layout (Section V, "Memory structure").

SlabAlloc trades the generality of 64-bit pointers for cheap-to-store,
shuffle-friendly 32-bit address layouts:

* bits  0–9   — the memory unit's index within its memory block (1024 units),
* bits 10–23  — the memory block's index within its super block (up to 2^14),
* bits 24–31  — the super block index (up to 2^8).

``0xFFFFFFFF`` is reserved as the empty pointer and ``0xFFFFFFFD`` as the
BASE_SLAB traversal sentinel, so the encoder refuses to produce them (they are
unreachable for any valid configuration anyway, because a full 256-super-block
allocator would need unit 1023 of block 16383 of super block 255 to collide
with EMPTY_POINTER, and that unit is simply never handed out).
"""

from __future__ import annotations

from typing import Tuple

from repro.core import constants as C

__all__ = [
    "UNIT_BITS",
    "BLOCK_BITS",
    "SUPER_BLOCK_BITS",
    "make_address",
    "decode_address",
    "is_valid_address",
]

UNIT_BITS = 10
BLOCK_BITS = 14
SUPER_BLOCK_BITS = 8

_UNIT_MASK = (1 << UNIT_BITS) - 1
_BLOCK_MASK = (1 << BLOCK_BITS) - 1
_SUPER_MASK = (1 << SUPER_BLOCK_BITS) - 1

_RESERVED = frozenset({C.EMPTY_POINTER, C.BASE_SLAB, C.DELETED_KEY})


def make_address(super_block: int, block: int, unit: int) -> int:
    """Encode (super block, memory block, memory unit) into a 32-bit slab address."""
    if not 0 <= unit <= _UNIT_MASK:
        raise ValueError(f"unit index out of range: {unit}")
    if not 0 <= block <= _BLOCK_MASK:
        raise ValueError(f"memory block index out of range: {block}")
    if not 0 <= super_block <= _SUPER_MASK:
        raise ValueError(f"super block index out of range: {super_block}")
    address = (super_block << (UNIT_BITS + BLOCK_BITS)) | (block << UNIT_BITS) | unit
    if address in _RESERVED:
        raise ValueError(
            f"address 0x{address:08X} collides with a reserved sentinel; "
            "this unit must not be handed out"
        )
    return address


def decode_address(address: int) -> Tuple[int, int, int]:
    """Decode a 32-bit slab address into (super block, memory block, memory unit)."""
    if not is_valid_address(address):
        raise ValueError(f"not a valid slab address: 0x{address:08X}")
    unit = address & _UNIT_MASK
    block = (address >> UNIT_BITS) & _BLOCK_MASK
    super_block = (address >> (UNIT_BITS + BLOCK_BITS)) & _SUPER_MASK
    return super_block, block, unit


def is_valid_address(address: int) -> bool:
    """True if ``address`` is a 32-bit value that is not a reserved sentinel."""
    return 0 <= address <= 0xFFFFFFFF and address not in _RESERVED
