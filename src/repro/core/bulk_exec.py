"""Vectorized bulk-execution backend: a counter-exact NumPy fast path.

The reference bulk driver (:class:`repro.core.slab_hash.SlabHash` with
``backend="reference"``) executes warps one generator step at a time — faithful
to the paper's warp-cooperative work sharing (Fig. 2), but the Python generator
machinery costs microseconds per simulated memory access.  This module executes
the same bulk batches with batched NumPy array operations and *synthesizes the
exact device-counter stream* the sequential reference schedule would have
produced, so the cost model, every figure, and every counter-based test see
bit-identical numbers.

Why this is possible
--------------------
In the bulk ("static comparison") mode the warps are drained sequentially, and
within a warp the WCWS work queue processes one source lane to completion
before moving to the next (``first_set_lane`` over a shrinking ballot).  The
schedule is therefore *strictly serial in array order*: operation ``i``
executes fully before operation ``i + 1``, and no CAS ever fails.  Final state
and per-operation results can then be resolved per bucket with sorting and
ranking primitives, and the counters follow from closed-form per-iteration
event profiles of the three warp procedures:

===============  ========================================================
per iteration    SEARCH: 38 warp instrs, 2 ballots, 3 shuffles (key-only
                 found: terminal iteration has 2), 1 coalesced slab read
                 REPLACE/INSERT: 46 warp instrs, 2 ballots, 3 shuffles in
                 key-value mode / 2 in key-only (+1 address shuffle on every
                 non-terminal iteration), 1 coalesced slab read
                 DELETE: 36 warp instrs, 2 ballots, 2 shuffles (+1 address
                 shuffle when the key is not in the slab), 1 coalesced read
per warp         1 extra ballot (the initial work-queue build)
per non-base     one address decode: +1 warp instr (SlabAlloc-light) or
slab visit       +8 warp instrs and 1 shared read (regular SlabAlloc)
===============  ========================================================

The iteration count of an operation is the number of slabs it visits: the
destination/match depth plus one, the full chain length for misses, and
``chain + 2`` for insertions that append a slab (the tail is re-read after the
pointer CAS).  Slab *allocations* are delegated to the real
:meth:`~repro.core.slab_alloc.SlabAlloc.warp_allocate` with the correct warp
ids in the correct global order, so resident-block churn, bitmap atomics and
growth behave — and count — exactly as in the reference schedule.

Fallback
--------
Unique-key (REPLACE) resolution assumes the *canonical* bucket layout that
every public API preserves: within each bucket's scan order, EMPTY slots only
follow occupied/tombstoned ones.  If a table is ever observed in a
non-canonical state (only reachable by external mutation of the stores), the
executor transparently falls back to the reference generator path for that
call, which is correct in every state.

When SlabAlloc raises (out of memory) mid-batch, the executor mirrors the
reference schedule's partial effects: every operation preceding the failing
one is applied (and counted), the failing operation's traversal up to the
failed allocation is counted, and the error propagates.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core import constants as C
from repro.gpusim.errors import AllocationError
from repro.gpusim.vectorize import (
    CounterTally,
    combine_codes,
    first_occurrence,
    group_ranks,
    run_starts,
)
from repro.gpusim.warp import WARP_SIZE, Warp

__all__ = [
    "BulkExecutor",
    "BACKENDS",
    "get_default_backend",
    "set_default_backend",
]

#: Selectable bulk-execution backends.
BACKENDS = ("vectorized", "reference")

_DEFAULT_BACKEND = "vectorized"


def get_default_backend() -> str:
    """The backend new :class:`~repro.core.slab_hash.SlabHash` tables use."""
    return _DEFAULT_BACKEND


def set_default_backend(name: str) -> None:
    """Set the process-wide default bulk-execution backend.

    Affects tables constructed afterwards with ``backend=None``; existing
    tables keep the backend they were built with.
    """
    global _DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose from {BACKENDS}")
    _DEFAULT_BACKEND = name


class _AppendFailed(Exception):
    """Internal: a slab allocation failed while appending for ``op_index``."""

    def __init__(self, op_index: int, error: AllocationError) -> None:
        super().__init__(str(error))
        self.op_index = op_index
        self.error = error


class _Snapshot:
    """Flattened host-side view of the table, in warp traversal (scan) order.

    Wraps a :class:`~repro.core.slab_list.ChainTable` with per-*slot* arrays:
    slot ``p`` of bucket ``b`` (0-based over the whole chain, ``M`` slots per
    slab) is the ``p``-th element position a traversing warp would inspect.
    """

    def __init__(self, lists, cfg) -> None:
        self.cfg = cfg
        self.eps = cfg.elements_per_slab
        self.key_lanes = np.fromiter(cfg.key_lanes, dtype=np.int64)
        self.ct = lists.chain_table()
        self.words = self.ct.words()
        self.keymat = self.words[:, self.key_lanes]
        self.offsets = self.ct.offsets
        self.chain_len = self.ct.chain_lengths()
        self.num_buckets = len(self.chain_len)
        slab_depth = np.arange(self.ct.num_slabs, dtype=np.int64) - self.offsets[
            self.ct.bucket_of
        ]
        self.slot_bucket = np.repeat(self.ct.bucket_of, self.eps)
        self.slot_pos = (
            slab_depth[:, None] * self.eps + np.arange(self.eps, dtype=np.int64)
        ).ravel()
        self.slot_key = self.keymat.ravel()

    # -- layout predicates ------------------------------------------------ #

    def is_canonical(self) -> bool:
        """True when every bucket keeps its EMPTY slots strictly at the tail."""
        empty = self.slot_key == C.EMPTY_KEY
        if len(empty) < 2:
            return True
        same_bucket = self.slot_bucket[:-1] == self.slot_bucket[1:]
        violation = empty[:-1] & ~empty[1:] & same_bucket
        return not bool(violation.any())

    def occupied_counts(self) -> np.ndarray:
        """Per-bucket count of non-EMPTY slots (live elements plus tombstones)."""
        occupied = self.slot_key != C.EMPTY_KEY
        return np.bincount(
            self.slot_bucket[occupied], minlength=self.num_buckets
        ).astype(np.int64)

    # -- live-element indexes --------------------------------------------- #

    def live_sorted(self) -> Tuple[np.ndarray, np.ndarray]:
        """All live slots as (codes, positions), sorted by (bucket, key, pos)."""
        live = (self.slot_key != C.EMPTY_KEY) & (self.slot_key != C.DELETED_KEY)
        codes = combine_codes(self.slot_bucket[live], self.slot_key[live])
        pos = self.slot_pos[live]
        order = np.argsort(codes, kind="stable")  # stable: pos stays ascending
        return codes[order], pos[order]

    def live_first_occurrences(self) -> Tuple[np.ndarray, np.ndarray]:
        """First live occurrence of each (bucket, key): (sorted codes, positions)."""
        codes, pos = self.live_sorted()
        first = run_starts(codes)
        return codes[first], pos[first]

    # -- slot resolution --------------------------------------------------- #

    def values_at(self, buckets: np.ndarray, pos: np.ndarray) -> np.ndarray:
        """Stored value lane at each (bucket, position) — key-value mode only."""
        rows = self.offsets[buckets] + pos // self.eps
        lanes = self.key_lanes[pos % self.eps] + 1
        return self.words[rows, lanes]


class _SlabMap:
    """Resolves (bucket, chain depth) to a writable (store, row) location.

    Starts from the snapshot's ChainTable and grows as the executor appends
    slabs, so end-of-call writes can be scattered per store with fancy
    indexing.
    """

    def __init__(self, snap: _Snapshot) -> None:
        self.snap = snap
        self.stores: List[np.ndarray] = list(snap.ct.stores)
        self._store_ids = {id(store): index for index, store in enumerate(self.stores)}
        self.appended_by_bucket: dict = {}  # (bucket, depth) -> (store_idx, row)
        self._appended_cache = None

    def register_append(self, bucket: int, depth: int, store: np.ndarray, row: int) -> None:
        key = id(store)
        if key not in self._store_ids:
            self._store_ids[key] = len(self.stores)
            self.stores.append(store)
        self.appended_by_bucket[(bucket, depth)] = (self._store_ids[key], row)
        self._appended_cache = None

    def location(self, bucket: int, depth: int) -> Tuple[np.ndarray, int]:
        chain = int(self.snap.chain_len[bucket])
        if depth < chain:
            flat = int(self.snap.offsets[bucket]) + depth
            return self.stores[int(self.snap.ct.store_idx[flat])], int(self.snap.ct.rows[flat])
        store_idx, row = self.appended_by_bucket[(bucket, depth)]
        return self.stores[store_idx], row

    def _appended_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(per-bucket offsets, store_idx, rows) of appended slabs, depth-sorted.

        A bucket's appended slabs occupy consecutive depths starting at its
        original chain length, so sorting by (bucket, depth) makes them
        addressable as ``offset[bucket] + depth - chain_len[bucket]``.
        """
        if self._appended_cache is None:
            entries = sorted(self.appended_by_bucket.items())
            buckets = np.fromiter((key[0] for key, _ in entries), np.int64, len(entries))
            offsets = np.zeros(self.snap.num_buckets + 1, dtype=np.int64)
            np.cumsum(np.bincount(buckets, minlength=self.snap.num_buckets), out=offsets[1:])
            self._appended_cache = (
                offsets,
                np.fromiter((loc[0] for _, loc in entries), np.int64, len(entries)),
                np.fromiter((loc[1] for _, loc in entries), np.int64, len(entries)),
            )
        return self._appended_cache

    def locations(self, buckets: np.ndarray, depths: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`location` over arrays (existing and appended slabs)."""
        store_idx = np.empty(len(buckets), dtype=np.int64)
        rows = np.empty(len(buckets), dtype=np.int64)
        in_chain = depths < self.snap.chain_len[buckets]
        flat = self.snap.offsets[buckets[in_chain]] + depths[in_chain]
        store_idx[in_chain] = self.snap.ct.store_idx[flat]
        rows[in_chain] = self.snap.ct.rows[flat]
        appended = ~in_chain
        if appended.any():
            offsets, app_store_idx, app_rows = self._appended_arrays()
            app_buckets = buckets[appended]
            index = offsets[app_buckets] + depths[appended] - self.snap.chain_len[app_buckets]
            store_idx[appended] = app_store_idx[index]
            rows[appended] = app_rows[index]
        return store_idx, rows

    def scatter(self, store_idx: np.ndarray, rows: np.ndarray, *writes) -> None:
        """Apply one or more (lanes, values) write sets at the given slots.

        Writes sharing slot coordinates (e.g. key lane and value lane) are
        passed together so the store grouping is computed once.
        """
        if len(store_idx) == 0:
            return
        # Most writes land in the dominant store (the base slabs); peel that
        # majority off with one mask and sort only the remainder.
        majority = store_idx[0]
        in_majority = store_idx == majority
        select = np.flatnonzero(in_majority) if not in_majority.all() else slice(None)
        store = self.stores[int(majority)]
        for lanes, values in writes:
            store[rows[select], lanes[select]] = values[select].astype(np.uint32, copy=False)
        if isinstance(select, slice):
            return
        rest = np.flatnonzero(~in_majority)
        order = rest[np.argsort(store_idx[rest], kind="stable")]
        sorted_idx = store_idx[order]
        starts = np.flatnonzero(np.r_[True, sorted_idx[1:] != sorted_idx[:-1]])
        bounds = np.append(starts, len(sorted_idx))
        for group in range(len(starts)):
            chosen = order[bounds[group] : bounds[group + 1]]
            store = self.stores[int(sorted_idx[bounds[group]])]
            for lanes, values in writes:
                store[rows[chosen], lanes[chosen]] = values[chosen].astype(np.uint32, copy=False)


class BulkExecutor:
    """Vectorized executor for one table's ``bulk_*`` operations.

    Parameters
    ----------
    table:
        The owning :class:`~repro.core.slab_hash.SlabHash`.  The executor
        reads/writes the table's stores directly and reports synthesized
        events into the table's device counters.
    """

    def __init__(self, table) -> None:
        self.table = table

    # ------------------------------------------------------------------ #
    # Shared plumbing
    # ------------------------------------------------------------------ #

    def _begin_kernel(self, num_ops: int) -> Tuple[int, int]:
        """Mirror the reference driver's kernel launch and warp-id allocation."""
        table = self.table
        table.device.launch_kernel()
        chunks = math.ceil(num_ops / WARP_SIZE)
        base_warp = table._warp_counter
        table._warp_counter += chunks
        return base_warp, chunks

    @property
    def _decode_cost(self) -> Tuple[int, int]:
        """(warp instructions, shared reads) per non-base-slab address decode.

        Mirrors :meth:`~repro.core.slab_alloc.SlabAlloc.charge_address_decode`.
        """
        return (1, 0) if self.table.alloc.light else (8, 1)

    def _tally_traversal(
        self,
        tally: CounterTally,
        *,
        iter_instructions: int,
        chunks: int,
        iters: int,
        decodes: int,
        shuffles: int,
    ) -> None:
        """Common per-iteration events of all three warp procedures."""
        decode_wi, decode_shared = self._decode_cost
        tally.add("coalesced_read_transactions", iters)
        tally.add("warp_ballots", chunks + 2 * iters)
        tally.add("warp_shuffles", shuffles)
        # charge(ITER) + first_set_lane(work queue) + first_set_lane(dest/found)
        tally.add("warp_instructions", (iter_instructions + 2) * iters + decode_wi * decodes)
        tally.add("shared_reads", decode_shared * decodes)

    def _process_appends(
        self,
        tally: CounterTally,
        slab_map: _SlabMap,
        append_ops: np.ndarray,
        buckets: np.ndarray,
        depths: np.ndarray,
        base_warp: int,
    ) -> None:
        """Allocate and link appended slabs, in global operation order.

        Each event runs the *real* allocator under the triggering warp's id, so
        resident-block hashing, bitmap atomics, resident changes and growth are
        reproduced (and counted) exactly; the pointer-append CAS (which cannot
        fail in the serial bulk schedule) is tallied as one 32-bit atomic.
        """
        table = self.table
        counters = table.device.counters
        for op in append_ops:
            bucket = int(buckets[op])
            depth = int(depths[op])  # chain length before this append
            warp = Warp(base_warp + int(op) // WARP_SIZE, counters)
            try:
                address = table.alloc.warp_allocate(warp)
            except AllocationError as error:
                raise _AppendFailed(int(op), error) from error
            tally.add("atomic32", 1)
            tail_store, tail_row = slab_map.location(bucket, depth - 1)
            tail_store[tail_row, C.ADDRESS_LANE] = np.uint32(address)
            store, row = table.alloc.slab_view(address)
            slab_map.register_append(bucket, depth, store, row)

    # ------------------------------------------------------------------ #
    # SEARCH
    # ------------------------------------------------------------------ #

    def bulk_search(self, queries: np.ndarray) -> np.ndarray:
        table = self.table
        cfg = table.config
        n = len(queries)
        base_warp, chunks = self._begin_kernel(n)
        results = np.full(n, C.SEARCH_NOT_FOUND, dtype=np.uint32)
        if n == 0:
            return results

        buckets = table.hash_fn.hash_array(queries)
        snap = _Snapshot(table.lists, cfg)
        codes, positions = snap.live_first_occurrences()
        found, index = first_occurrence(codes, combine_codes(buckets, queries))

        pos = positions[index[found]]
        if cfg.key_value:
            results[found] = snap.values_at(buckets[found], pos)
        else:
            results[found] = queries[found]

        reads = snap.chain_len[buckets].copy()
        reads[found] = pos // snap.eps + 1
        iters = int(reads.sum())
        shuffles = 3 * iters - (0 if cfg.key_value else int(found.sum()))

        tally = CounterTally()
        self._tally_traversal(
            tally,
            iter_instructions=C.SEARCH_ITER_INSTRUCTIONS,
            chunks=chunks,
            iters=iters,
            decodes=iters - n,
            shuffles=shuffles,
        )
        tally.commit(table.device.counters)
        return results

    # ------------------------------------------------------------------ #
    # DELETE
    # ------------------------------------------------------------------ #

    def bulk_delete(self, keys: np.ndarray) -> np.ndarray:
        table = self.table
        cfg = table.config
        n = len(keys)
        base_warp, chunks = self._begin_kernel(n)
        removed = np.zeros(n, dtype=np.int64)
        if n == 0:
            return removed

        buckets = table.hash_fn.hash_array(keys)
        snap = _Snapshot(table.lists, cfg)
        codes, positions = snap.live_sorted()
        query_codes = combine_codes(buckets, keys)
        starts = np.searchsorted(codes, query_codes, side="left")
        counts = np.searchsorted(codes, query_codes, side="right") - starts
        # The r-th delete of a key (in batch order) removes its r-th live
        # occurrence in scan order; any further deletes traverse the chain
        # and miss, exactly like deletes of absent keys.
        ranks = group_ranks(query_codes)
        found = ranks < counts
        removed[found] = 1

        pos = positions[starts[found] + ranks[found]]
        depth = pos // snap.eps
        reads = snap.chain_len[buckets].copy()
        reads[found] = depth + 1
        iters = int(reads.sum())
        found_count = int(found.sum())

        tombstone = C.DELETED_KEY if cfg.unique_keys else C.EMPTY_KEY
        slab_map = _SlabMap(snap)
        bucket_f = buckets[found]
        store_idx, rows = slab_map.locations(bucket_f, depth)
        lanes = snap.key_lanes[pos % snap.eps]
        words_per_delete = 1
        writes = [(lanes, np.full(found_count, tombstone, np.uint32))]
        if cfg.key_value and tombstone == C.EMPTY_KEY:
            # Recycled slots must read as a full EMPTY_PAIR (cf. _mark_deleted).
            words_per_delete = 2
            writes.append((lanes + 1, np.full(found_count, C.EMPTY_VALUE, np.uint32)))
        slab_map.scatter(store_idx, rows, *writes)

        tally = CounterTally()
        self._tally_traversal(
            tally,
            iter_instructions=C.DELETE_ITER_INSTRUCTIONS,
            chunks=chunks,
            iters=iters,
            decodes=iters - n,
            shuffles=3 * iters - found_count,
        )
        tally.add("uncoalesced_write_words", words_per_delete * found_count)
        tally.commit(table.device.counters)
        return removed

    # ------------------------------------------------------------------ #
    # INSERT / REPLACE
    # ------------------------------------------------------------------ #

    def bulk_insert(self, keys: np.ndarray, values: Optional[np.ndarray]) -> None:
        table = self.table
        if table.config.unique_keys:
            snap = _Snapshot(table.lists, table.config)
            if not snap.is_canonical():
                # External mutation produced mid-chain EMPTY slots; REPLACE
                # semantics then depend on empty-vs-match scan races that only
                # the reference schedule resolves faithfully.
                table._reference_bulk_insert(keys, values)
                return
            self._insert_resolved(keys, values, snap, self._resolve_unique(snap, keys))
        else:
            snap = _Snapshot(table.lists, table.config)
            self._insert_resolved(keys, values, snap, self._resolve_duplicates(snap, keys))

    def _resolve_unique(
        self, snap: _Snapshot, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """REPLACE destinations: (buckets, dest position, slot-consuming mask).

        A key already live in its bucket (or inserted earlier in this batch)
        replaces in place at its first occurrence; each other op claims the
        bucket's next free slot in arrival order (canonical layout: slot
        ``occupied + rank``).
        """
        table = self.table
        n = len(keys)
        buckets = table.hash_fn.hash_array(keys)
        occupied = snap.occupied_counts()
        codes, positions = snap.live_first_occurrences()
        query_codes = combine_codes(buckets, keys)
        matched, index = first_occurrence(codes, query_codes)

        dest = np.empty(n, dtype=np.int64)
        dest[matched] = positions[index[matched]]
        consuming = np.zeros(n, dtype=bool)

        new_ops = np.flatnonzero(~matched)
        if new_ops.size:
            # Group batch-new ops by (bucket, key): the first occurrence (in
            # batch order) claims a slot, later occurrences replace in place.
            order = np.argsort(query_codes[new_ops], kind="stable")
            run_start = run_starts(query_codes[new_ops][order])
            run_ids = np.cumsum(run_start) - 1
            first_ops = new_ops[order[run_start]]  # min op index of each run
            consuming_ops = np.sort(first_ops) if len(first_ops) < len(new_ops) else new_ops
            consuming[consuming_ops] = True
            dest_consuming = occupied[buckets[consuming_ops]] + group_ranks(
                buckets[consuming_ops]
            )
            dest_per_run = dest_consuming[np.searchsorted(consuming_ops, first_ops)]
            dest_new = np.empty(len(new_ops), dtype=np.int64)
            dest_new[order] = dest_per_run[run_ids]
            dest[new_ops] = dest_new
        return buckets, dest, consuming

    def _resolve_duplicates(
        self, snap: _Snapshot, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """INSERT destinations: every op claims the bucket's next EMPTY slot.

        Free slots (including recycled mid-chain ones) are consumed in scan
        order; overflow continues into appended slabs.
        """
        table = self.table
        n = len(keys)
        buckets = table.hash_fn.hash_array(keys)
        empty = snap.slot_key == C.EMPTY_KEY
        free_pos = snap.slot_pos[empty]
        free_counts = np.bincount(
            snap.slot_bucket[empty], minlength=snap.num_buckets
        ).astype(np.int64)
        free_offsets = np.zeros(snap.num_buckets + 1, dtype=np.int64)
        np.cumsum(free_counts, out=free_offsets[1:])

        ranks = group_ranks(buckets)
        dest = np.empty(n, dtype=np.int64)
        in_free = ranks < free_counts[buckets]
        dest[in_free] = free_pos[free_offsets[buckets[in_free]] + ranks[in_free]]
        overflow = ~in_free
        capacity = snap.chain_len * snap.eps
        dest[overflow] = capacity[buckets[overflow]] + (
            ranks[overflow] - free_counts[buckets[overflow]]
        )
        return buckets, dest, np.ones(n, dtype=bool)

    def _insert_resolved(
        self,
        keys: np.ndarray,
        values: Optional[np.ndarray],
        snap: _Snapshot,
        resolution: Tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> None:
        table = self.table
        cfg = table.config
        n = len(keys)
        base_warp, chunks = self._begin_kernel(n)
        if n == 0:
            return
        buckets, dest, consuming = resolution
        eps = snap.eps
        capacity = snap.chain_len * eps
        depth = dest // eps

        # A slot-consuming op whose destination is the first slot past the
        # current capacity appends a slab: it traverses to the tail, allocates,
        # CASes the pointer, re-reads the tail and follows into the new slab.
        append_ops = np.flatnonzero(consuming & (dest % eps == 0) & (dest >= capacity[buckets]))
        reads = depth + 1
        decodes = depth.copy()
        if append_ops.size:
            reads[append_ops] += 1
            decodes[append_ops] += (depth[append_ops] > 1).astype(np.int64)

        slab_map = _SlabMap(snap)
        tally = CounterTally()
        try:
            self._process_appends(tally, slab_map, append_ops, buckets, depth, base_warp)
        except _AppendFailed as failed:
            self._finish_partial_insert(
                keys, values, tally, slab_map, resolution, reads, decodes,
                depth, base_warp, failed.op_index,
            )
            raise failed.error

        iters = int(reads.sum())
        base_shuffles = 3 if cfg.key_value else 2
        self._tally_traversal(
            tally,
            iter_instructions=C.REPLACE_ITER_INSTRUCTIONS,
            chunks=chunks,
            iters=iters,
            decodes=int(decodes.sum()),
            shuffles=base_shuffles * iters + (iters - n),
        )
        if cfg.key_value:
            tally.add("atomic64", n)
        else:
            # Key-only REPLACE of an already-present key is a no-op (no CAS);
            # only slot-claiming insertions issue the 32-bit CAS.
            tally.add("atomic32", int(consuming.sum()))

        self._apply_insert_writes(keys, values, slab_map, buckets, dest, consuming, None)
        tally.commit(table.device.counters)

    def _apply_insert_writes(
        self,
        keys: np.ndarray,
        values: Optional[np.ndarray],
        slab_map: _SlabMap,
        buckets: np.ndarray,
        dest: np.ndarray,
        consuming: np.ndarray,
        limit: Optional[int],
    ) -> None:
        """Write resolved insertions into the stores (ops ``< limit`` only).

        Key-value REPLACE CASes (key, value) for every op (replacing in place
        re-writes the pair), key-only mode only writes newly claimed slots.
        The last write to a slot wins, as in serial order.
        """
        cfg = self.table.config
        snap = slab_map.snap
        n = len(keys) if limit is None else limit
        write_ops = np.arange(n) if cfg.key_value else np.flatnonzero(consuming[:n])
        if not write_ops.size:
            return
        if bool(consuming[:n].all()) or not cfg.key_value:
            # Every written slot is distinct (slot-claiming ops claim distinct
            # slots; key-only mode writes nothing else).
            keep = write_ops
        else:
            slot_ids = buckets[write_ops] * (int(dest.max()) + 1) + dest[write_ops]
            # Keep the last write per slot: reverse before marking run starts.
            order = np.argsort(slot_ids, kind="stable")[::-1]
            keep = write_ops[order[run_starts(slot_ids[order])]]

        keep_depth = dest[keep] // snap.eps
        store_idx, rows = slab_map.locations(buckets[keep], keep_depth)
        lanes = snap.key_lanes[dest[keep] % snap.eps]
        writes = [(lanes, keys[keep])]
        if cfg.key_value:
            writes.append((lanes + 1, values[keep]))
        slab_map.scatter(store_idx, rows, *writes)

    def _finish_partial_insert(
        self,
        keys: np.ndarray,
        values: Optional[np.ndarray],
        tally: CounterTally,
        slab_map: _SlabMap,
        resolution: Tuple[np.ndarray, np.ndarray, np.ndarray],
        reads: np.ndarray,
        decodes: np.ndarray,
        depth: np.ndarray,
        base_warp: int,
        failed_op: int,
    ) -> None:
        """Mirror the reference schedule's partial effects of a failed append.

        Operations before ``failed_op`` executed fully; ``failed_op`` itself
        traversed its chain and died inside ``warp_allocate`` (whose own
        events the real allocator already charged).  Later operations — and
        later warps — never ran.
        """
        table = self.table
        cfg = table.config
        launched_chunks = failed_op // WARP_SIZE + 1
        table._warp_counter = base_warp + launched_chunks
        buckets, dest, consuming = resolution

        prefix_iters = int(reads[:failed_op].sum())
        chain = int(depth[failed_op])  # tail depth the failing op reached
        base_shuffles = 3 if cfg.key_value else 2
        self._tally_traversal(
            tally,
            iter_instructions=C.REPLACE_ITER_INSTRUCTIONS,
            chunks=launched_chunks,
            iters=prefix_iters + chain,
            decodes=int(decodes[:failed_op].sum()) + (chain - 1),
            shuffles=base_shuffles * (prefix_iters + chain)
            + (prefix_iters - failed_op)
            + chain,
        )
        # The failing op's last iteration issued the candidate ballot but died
        # before the end-of-loop work-queue ballot.
        tally.add("warp_ballots", -1)
        if cfg.key_value:
            tally.add("atomic64", failed_op)
        else:
            tally.add("atomic32", int(consuming[:failed_op].sum()))

        self._apply_insert_writes(keys, values, slab_map, buckets, dest, consuming, failed_op)
        tally.commit(table.device.counters)
