"""Vectorized bulk-execution backend: a counter-exact NumPy fast path.

The reference bulk driver (:class:`repro.core.slab_hash.SlabHash` with
``backend="reference"``) executes warps one generator step at a time — faithful
to the paper's warp-cooperative work sharing (Fig. 2), but the Python generator
machinery costs microseconds per simulated memory access.  This module executes
the same batches with batched NumPy resolution plus a compact serial replay and
*synthesizes the exact device-counter stream* the sequential reference schedule
would have produced, so the cost model, every figure, and every counter-based
test see bit-identical numbers.  It covers both the homogeneous ``bulk_*``
operations and — since the concurrent fast path landed — unscheduled
``concurrent_batch`` calls (mixed insert/delete/search batches run without an
explicit :class:`~repro.gpusim.scheduler.WarpScheduler`); scheduler-interleaved
runs still use the reference generators, since seeded interleavings are the
whole point there.

Why this is possible
--------------------
In the bulk ("static comparison") mode the warps are drained sequentially, and
within a warp the WCWS work queue processes one source lane to completion
before moving to the next (``first_set_lane`` over a shrinking ballot).  The
schedule is therefore *strictly serial in array order*: operation ``i``
executes fully before operation ``i + 1``, and no CAS ever fails.  Final state
and per-operation results can then be resolved per bucket with sorting and
ranking primitives, and the counters follow from closed-form per-iteration
event profiles of the three warp procedures.

The same argument extends to an unscheduled ``concurrent_batch``: the driver
enqueues, per warp chunk, one program per operation type present (insert,
then delete, then search) and drains them sequentially, so the mixed batch is
strictly serial in ``(chunk, phase, lane)`` order
(:func:`repro.gpusim.vectorize.phased_order`).  Because interleaved phases
mutate the very chains later phases traverse, the concurrent path resolves
destinations with an incremental per-bucket replay of that serial order
instead of whole-batch rank arithmetic, then applies state and counters in
bulk.  Event profiles:

===============  ========================================================
per iteration    SEARCH: 38 warp instrs, 2 ballots, 3 shuffles (key-only
                 found: terminal iteration has 2), 1 coalesced slab read
                 REPLACE/INSERT: 46 warp instrs, 2 ballots, 3 shuffles in
                 key-value mode / 2 in key-only (+1 address shuffle on every
                 non-terminal iteration), 1 coalesced slab read
                 DELETE: 36 warp instrs, 2 ballots, 2 shuffles (+1 address
                 shuffle when the key is not in the slab), 1 coalesced read
per warp         1 extra ballot (the initial work-queue build)
per non-base     one address decode: +1 warp instr (SlabAlloc-light) or
slab visit       +8 warp instrs and 1 shared read (regular SlabAlloc)
===============  ========================================================

The iteration count of an operation is the number of slabs it visits: the
destination/match depth plus one, the full chain length for misses, and
``chain + 2`` for insertions that append a slab (the tail is re-read after the
pointer CAS).  Slab *allocations* are delegated to the real
:meth:`~repro.core.slab_alloc.SlabAlloc.warp_allocate` with the correct warp
ids in the correct global order, so resident-block churn, bitmap atomics and
growth behave — and count — exactly as in the reference schedule.

Fallback
--------
Unique-key (REPLACE) resolution assumes the *canonical* bucket layout that
every public API preserves: within each bucket's scan order, EMPTY slots only
follow occupied/tombstoned ones.  If a table is ever observed in a
non-canonical state (only reachable by external mutation of the stores), the
executor transparently falls back to the reference generator path for that
call — both for ``bulk_insert`` and for ``concurrent_batch`` — which is
correct in every state.

When SlabAlloc raises (out of memory) mid-batch, the executor mirrors the
reference schedule's partial effects: every operation preceding the failing
one is applied (and counted), the failing operation's traversal up to the
failed allocation is counted, and the error propagates.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core import constants as C
from repro.gpusim.errors import AllocationError
from repro.gpusim.vectorize import (
    CounterTally,
    combine_codes,
    first_occurrence,
    group_ranks,
    phased_order,
    run_starts,
)
from repro.gpusim.warp import WARP_SIZE, Warp

if TYPE_CHECKING:
    from repro.core.config import SlabConfig
    from repro.core.slab_hash import SlabHash
    from repro.core.slab_list import SlabListCollection

__all__ = [
    "BulkExecutor",
    "BACKENDS",
    "gather_band",
    "get_default_backend",
    "set_default_backend",
]

#: Selectable bulk-execution backends.
BACKENDS = ("vectorized", "reference")

_DEFAULT_BACKEND = "vectorized"


def get_default_backend() -> str:
    """The backend new :class:`~repro.core.slab_hash.SlabHash` tables use."""
    return _DEFAULT_BACKEND


def set_default_backend(name: str) -> None:
    """Set the process-wide default bulk-execution backend.

    Affects tables constructed afterwards with ``backend=None``; existing
    tables keep the backend they were built with.
    """
    global _DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose from {BACKENDS}")
    _DEFAULT_BACKEND = name


def gather_band(
    lists: "SlabListCollection", lo: int, hi: int
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Vectorized migration kernel: live contents of buckets ``[lo, hi)``.

    Returns ``(keys, values)`` in bucket scan order — the exact order the
    reference generator schedule observes when walking the same band with
    :meth:`~repro.core.slab_list.SlabListCollection.live_items` — with
    ``values`` ``None`` in key-only mode.  One grouped gather over the
    band's slabs (via :class:`~repro.core.slab_list.ChainTable`), no Python
    loop per slab.  Host-side and uncounted, like the other snapshot scans;
    the *re-insertion* of the band is what the migration charges to the
    device, through the regular bulk path.
    """
    cfg = lists.config
    ct = lists.chain_table()
    start, stop = int(ct.offsets[lo]), int(ct.offsets[hi])
    words = np.empty((stop - start, C.SLAB_WORDS), dtype=np.uint32)
    band_store_idx = ct.store_idx[start:stop]
    band_rows = ct.rows[start:stop]
    for index, store in enumerate(ct.stores):
        mask = band_store_idx == index
        if mask.any():
            words[mask] = store[band_rows[mask]]
    key_lanes = np.fromiter(cfg.key_lanes, dtype=np.int64)
    keys = words[:, key_lanes]
    live = (keys != C.EMPTY_KEY) & (keys != C.DELETED_KEY)
    rows, cols = np.nonzero(live)
    out_keys = keys[rows, cols]
    if not cfg.key_value:
        return out_keys, None
    return out_keys, words[rows, key_lanes[cols] + 1]


class _AppendFailed(Exception):
    """Internal: a slab allocation failed while appending for ``op_index``."""

    def __init__(self, op_index: int, error: AllocationError) -> None:
        super().__init__(str(error))
        self.op_index = op_index
        self.error = error


class _Snapshot:
    """Flattened host-side view of the table, in warp traversal (scan) order.

    Wraps a :class:`~repro.core.slab_list.ChainTable` with per-*slot* arrays:
    slot ``p`` of bucket ``b`` (0-based over the whole chain, ``M`` slots per
    slab) is the ``p``-th element position a traversing warp would inspect.
    """

    def __init__(self, lists: "SlabListCollection", cfg: SlabConfig) -> None:
        self.cfg = cfg
        self.eps = cfg.elements_per_slab
        self.key_lanes = np.fromiter(cfg.key_lanes, dtype=np.int64)
        self.ct = lists.chain_table()
        self.words = self.ct.words()
        self.keymat = self.words[:, self.key_lanes]
        self.offsets = self.ct.offsets
        self.chain_len = self.ct.chain_lengths()
        self.num_buckets = len(self.chain_len)
        slab_depth = np.arange(self.ct.num_slabs, dtype=np.int64) - self.offsets[
            self.ct.bucket_of
        ]
        self.slot_bucket = np.repeat(self.ct.bucket_of, self.eps)
        self.slot_pos = (
            slab_depth[:, None] * self.eps + np.arange(self.eps, dtype=np.int64)
        ).ravel()
        self.slot_key = self.keymat.ravel()

    # -- layout predicates ------------------------------------------------ #

    def is_canonical(self) -> bool:
        """True when every bucket keeps its EMPTY slots strictly at the tail."""
        empty = self.slot_key == C.EMPTY_KEY
        if len(empty) < 2:
            return True
        same_bucket = self.slot_bucket[:-1] == self.slot_bucket[1:]
        violation = empty[:-1] & ~empty[1:] & same_bucket
        return not bool(violation.any())

    def occupied_counts(self) -> np.ndarray:
        """Per-bucket count of non-EMPTY slots (live elements plus tombstones)."""
        occupied = self.slot_key != C.EMPTY_KEY
        return np.bincount(
            self.slot_bucket[occupied], minlength=self.num_buckets
        ).astype(np.int64)

    # -- live-element indexes --------------------------------------------- #

    def live_sorted(self) -> Tuple[np.ndarray, np.ndarray]:
        """All live slots as (codes, positions), sorted by (bucket, key, pos)."""
        live = (self.slot_key != C.EMPTY_KEY) & (self.slot_key != C.DELETED_KEY)
        codes = combine_codes(self.slot_bucket[live], self.slot_key[live])
        pos = self.slot_pos[live]
        order = np.argsort(codes, kind="stable")  # stable: pos stays ascending
        return codes[order], pos[order]

    def live_first_occurrences(self) -> Tuple[np.ndarray, np.ndarray]:
        """First live occurrence of each (bucket, key): (sorted codes, positions)."""
        codes, pos = self.live_sorted()
        first = run_starts(codes)
        return codes[first], pos[first]

    # -- slot resolution --------------------------------------------------- #

    def values_at(self, buckets: np.ndarray, pos: np.ndarray) -> np.ndarray:
        """Stored value lane at each (bucket, position) — key-value mode only."""
        rows = self.offsets[buckets] + pos // self.eps
        lanes = self.key_lanes[pos % self.eps] + 1
        return self.words[rows, lanes]


class _SlabMap:
    """Resolves (bucket, chain depth) to a writable (store, row) location.

    Starts from the snapshot's ChainTable and grows as the executor appends
    slabs, so end-of-call writes can be scattered per store with fancy
    indexing.
    """

    def __init__(self, snap: _Snapshot) -> None:
        self.snap = snap
        self.stores: List[np.ndarray] = list(snap.ct.stores)
        self._store_ids = {id(store): index for index, store in enumerate(self.stores)}
        #: (bucket, depth) -> (store index, row)
        self.appended_by_bucket: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._appended_cache = None

    def register_append(self, bucket: int, depth: int, store: np.ndarray, row: int) -> None:
        key = id(store)
        if key not in self._store_ids:
            self._store_ids[key] = len(self.stores)
            self.stores.append(store)
        self.appended_by_bucket[(bucket, depth)] = (self._store_ids[key], row)
        self._appended_cache = None

    def location(self, bucket: int, depth: int) -> Tuple[np.ndarray, int]:
        chain = int(self.snap.chain_len[bucket])
        if depth < chain:
            flat = int(self.snap.offsets[bucket]) + depth
            return self.stores[int(self.snap.ct.store_idx[flat])], int(self.snap.ct.rows[flat])
        store_idx, row = self.appended_by_bucket[(bucket, depth)]
        return self.stores[store_idx], row

    def _appended_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(per-bucket offsets, store_idx, rows) of appended slabs, depth-sorted.

        A bucket's appended slabs occupy consecutive depths starting at its
        original chain length, so sorting by (bucket, depth) makes them
        addressable as ``offset[bucket] + depth - chain_len[bucket]``.
        """
        if self._appended_cache is None:
            entries = sorted(self.appended_by_bucket.items())
            buckets = np.fromiter((key[0] for key, _ in entries), np.int64, len(entries))
            offsets = np.zeros(self.snap.num_buckets + 1, dtype=np.int64)
            np.cumsum(np.bincount(buckets, minlength=self.snap.num_buckets), out=offsets[1:])
            self._appended_cache = (
                offsets,
                np.fromiter((loc[0] for _, loc in entries), np.int64, len(entries)),
                np.fromiter((loc[1] for _, loc in entries), np.int64, len(entries)),
            )
        return self._appended_cache

    def locations(self, buckets: np.ndarray, depths: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`location` over arrays (existing and appended slabs)."""
        store_idx = np.empty(len(buckets), dtype=np.int64)
        rows = np.empty(len(buckets), dtype=np.int64)
        in_chain = depths < self.snap.chain_len[buckets]
        flat = self.snap.offsets[buckets[in_chain]] + depths[in_chain]
        store_idx[in_chain] = self.snap.ct.store_idx[flat]
        rows[in_chain] = self.snap.ct.rows[flat]
        appended = ~in_chain
        if appended.any():
            offsets, app_store_idx, app_rows = self._appended_arrays()
            app_buckets = buckets[appended]
            index = offsets[app_buckets] + depths[appended] - self.snap.chain_len[app_buckets]
            store_idx[appended] = app_store_idx[index]
            rows[appended] = app_rows[index]
        return store_idx, rows

    def scatter(
        self,
        store_idx: np.ndarray,
        rows: np.ndarray,
        *writes: Tuple[np.ndarray, np.ndarray],
    ) -> None:
        """Apply one or more (lanes, values) write sets at the given slots.

        Writes sharing slot coordinates (e.g. key lane and value lane) are
        passed together so the store grouping is computed once.
        """
        if len(store_idx) == 0:
            return
        # Most writes land in the dominant store (the base slabs); peel that
        # majority off with one mask and sort only the remainder.
        majority = store_idx[0]
        in_majority = store_idx == majority
        select = np.flatnonzero(in_majority) if not in_majority.all() else slice(None)
        store = self.stores[int(majority)]
        for lanes, values in writes:
            store[rows[select], lanes[select]] = values[select].astype(np.uint32, copy=False)
        if isinstance(select, slice):
            return
        rest = np.flatnonzero(~in_majority)
        order = rest[np.argsort(store_idx[rest], kind="stable")]
        sorted_idx = store_idx[order]
        starts = np.flatnonzero(np.r_[True, sorted_idx[1:] != sorted_idx[:-1]])
        bounds = np.append(starts, len(sorted_idx))
        for group in range(len(starts)):
            chosen = order[bounds[group] : bounds[group + 1]]
            store = self.stores[int(sorted_idx[bounds[group]])]
            for lanes, values in writes:
                store[rows[chosen], lanes[chosen]] = values[chosen].astype(np.uint32, copy=False)


class BulkExecutor:
    """Vectorized executor for one table's ``bulk_*`` operations.

    Parameters
    ----------
    table:
        The owning :class:`~repro.core.slab_hash.SlabHash`.  The executor
        reads/writes the table's stores directly and reports synthesized
        events into the table's device counters.
    """

    def __init__(self, table: "SlabHash") -> None:
        self.table = table

    # ------------------------------------------------------------------ #
    # Shared plumbing
    # ------------------------------------------------------------------ #

    def _begin_kernel(self, num_ops: int) -> Tuple[int, int]:
        """Mirror the reference driver's kernel launch and warp-id allocation."""
        table = self.table
        table.device.launch_kernel()
        chunks = math.ceil(num_ops / WARP_SIZE)
        base_warp = table._warp_counter
        table._warp_counter += chunks
        return base_warp, chunks

    @property
    def _decode_cost(self) -> Tuple[int, int]:
        """(warp instructions, shared reads) per non-base-slab address decode.

        Mirrors :meth:`~repro.core.slab_alloc.SlabAlloc.charge_address_decode`.
        """
        return (1, 0) if self.table.alloc.light else (8, 1)

    def _tally_traversal(
        self,
        tally: CounterTally,
        *,
        iter_instructions: int,
        chunks: int,
        iters: int,
        decodes: int,
        shuffles: int,
    ) -> None:
        """Common per-iteration events of all three warp procedures."""
        decode_wi, decode_shared = self._decode_cost
        tally.add("coalesced_read_transactions", iters)
        tally.add("warp_ballots", chunks + 2 * iters)
        tally.add("warp_shuffles", shuffles)
        # charge(ITER) + first_set_lane(work queue) + first_set_lane(dest/found)
        tally.add("warp_instructions", (iter_instructions + 2) * iters + decode_wi * decodes)
        tally.add("shared_reads", decode_shared * decodes)

    def _process_appends(
        self,
        tally: CounterTally,
        slab_map: _SlabMap,
        append_ops: np.ndarray,
        buckets: np.ndarray,
        depths: np.ndarray,
        base_warp: int,
        *,
        warp_ops: Optional[np.ndarray] = None,
        on_append: Optional[Callable[[int, int, int], None]] = None,
    ) -> None:
        """Allocate and link appended slabs, in global operation order.

        Each event runs the *real* allocator under the triggering warp's id, so
        resident-block hashing, bitmap atomics, resident changes and growth are
        reproduced (and counted) exactly; the pointer-append CAS (which cannot
        fail in the serial bulk schedule) is tallied as one 32-bit atomic.

        ``warp_ops`` maps each index in ``append_ops`` to the operation index
        that determines its warp id (identity for the bulk paths; the original
        batch position for the concurrent fast path, whose arrays are compacted
        to the replayed subset).  ``on_append`` is invoked as
        ``on_append(op, bucket, depth)`` after each successful append (the
        concurrent path records its append log through it).
        """
        table = self.table
        counters = table.device.counters
        for op in append_ops:
            bucket = int(buckets[op])
            depth = int(depths[op])  # chain length before this append
            warp_op = int(op) if warp_ops is None else int(warp_ops[op])
            warp = Warp(base_warp + warp_op // WARP_SIZE, counters)
            try:
                address = table.alloc.warp_allocate(warp)
            except AllocationError as error:
                raise _AppendFailed(int(op), error) from error
            tally.add("atomic32", 1)
            tail_store, tail_row = slab_map.location(bucket, depth - 1)
            tail_store[tail_row, C.ADDRESS_LANE] = np.uint32(address)
            store, row = table.alloc.slab_view(address)
            slab_map.register_append(bucket, depth, store, row)
            if on_append is not None:
                on_append(int(op), bucket, depth)

    # ------------------------------------------------------------------ #
    # SEARCH
    # ------------------------------------------------------------------ #

    def bulk_search(self, queries: np.ndarray) -> np.ndarray:
        table = self.table
        cfg = table.config
        n = len(queries)
        base_warp, chunks = self._begin_kernel(n)
        results = np.full(n, C.SEARCH_NOT_FOUND, dtype=np.uint32)
        if n == 0:
            return results

        buckets = table.hash_fn.hash_array(queries)
        snap = _Snapshot(table.lists, cfg)
        codes, positions = snap.live_first_occurrences()
        found, index = first_occurrence(codes, combine_codes(buckets, queries))

        pos = positions[index[found]]
        if cfg.key_value:
            results[found] = snap.values_at(buckets[found], pos)
        else:
            results[found] = queries[found]

        reads = snap.chain_len[buckets].copy()
        reads[found] = pos // snap.eps + 1
        iters = int(reads.sum())
        shuffles = 3 * iters - (0 if cfg.key_value else int(found.sum()))

        tally = CounterTally()
        self._tally_traversal(
            tally,
            iter_instructions=C.SEARCH_ITER_INSTRUCTIONS,
            chunks=chunks,
            iters=iters,
            decodes=iters - n,
            shuffles=shuffles,
        )
        tally.commit(table.device.counters)
        return results

    # ------------------------------------------------------------------ #
    # DELETE
    # ------------------------------------------------------------------ #

    def bulk_delete(self, keys: np.ndarray) -> np.ndarray:
        table = self.table
        cfg = table.config
        n = len(keys)
        base_warp, chunks = self._begin_kernel(n)
        removed = np.zeros(n, dtype=np.int64)
        if n == 0:
            return removed

        buckets = table.hash_fn.hash_array(keys)
        snap = _Snapshot(table.lists, cfg)
        codes, positions = snap.live_sorted()
        query_codes = combine_codes(buckets, keys)
        starts = np.searchsorted(codes, query_codes, side="left")
        counts = np.searchsorted(codes, query_codes, side="right") - starts
        # The r-th delete of a key (in batch order) removes its r-th live
        # occurrence in scan order; any further deletes traverse the chain
        # and miss, exactly like deletes of absent keys.
        ranks = group_ranks(query_codes)
        found = ranks < counts
        removed[found] = 1

        pos = positions[starts[found] + ranks[found]]
        depth = pos // snap.eps
        reads = snap.chain_len[buckets].copy()
        reads[found] = depth + 1
        iters = int(reads.sum())
        found_count = int(found.sum())

        tombstone = C.DELETED_KEY if cfg.unique_keys else C.EMPTY_KEY
        slab_map = _SlabMap(snap)
        bucket_f = buckets[found]
        store_idx, rows = slab_map.locations(bucket_f, depth)
        lanes = snap.key_lanes[pos % snap.eps]
        words_per_delete = 1
        writes = [(lanes, np.full(found_count, tombstone, np.uint32))]
        if cfg.key_value and tombstone == C.EMPTY_KEY:
            # Recycled slots must read as a full EMPTY_PAIR (cf. _mark_deleted).
            words_per_delete = 2
            writes.append((lanes + 1, np.full(found_count, C.EMPTY_VALUE, np.uint32)))
        slab_map.scatter(store_idx, rows, *writes)

        tally = CounterTally()
        self._tally_traversal(
            tally,
            iter_instructions=C.DELETE_ITER_INSTRUCTIONS,
            chunks=chunks,
            iters=iters,
            decodes=iters - n,
            shuffles=3 * iters - found_count,
        )
        tally.add("uncoalesced_write_words", words_per_delete * found_count)
        tally.commit(table.device.counters)
        return removed

    # ------------------------------------------------------------------ #
    # INSERT / REPLACE
    # ------------------------------------------------------------------ #

    def bulk_insert(self, keys: np.ndarray, values: Optional[np.ndarray]) -> None:
        table = self.table
        if table.config.unique_keys:
            snap = _Snapshot(table.lists, table.config)
            if not snap.is_canonical():
                # External mutation produced mid-chain EMPTY slots; REPLACE
                # semantics then depend on empty-vs-match scan races that only
                # the reference schedule resolves faithfully.
                table._reference_bulk_insert(keys, values)
                return
            self._insert_resolved(keys, values, snap, self._resolve_unique(snap, keys))
        else:
            snap = _Snapshot(table.lists, table.config)
            self._insert_resolved(keys, values, snap, self._resolve_duplicates(snap, keys))

    def _resolve_unique(
        self, snap: _Snapshot, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """REPLACE destinations: (buckets, dest position, slot-consuming mask).

        A key already live in its bucket (or inserted earlier in this batch)
        replaces in place at its first occurrence; each other op claims the
        bucket's next free slot in arrival order (canonical layout: slot
        ``occupied + rank``).
        """
        table = self.table
        n = len(keys)
        buckets = table.hash_fn.hash_array(keys)
        occupied = snap.occupied_counts()
        codes, positions = snap.live_first_occurrences()
        query_codes = combine_codes(buckets, keys)
        matched, index = first_occurrence(codes, query_codes)

        dest = np.empty(n, dtype=np.int64)
        dest[matched] = positions[index[matched]]
        consuming = np.zeros(n, dtype=bool)

        new_ops = np.flatnonzero(~matched)
        if new_ops.size:
            # Group batch-new ops by (bucket, key): the first occurrence (in
            # batch order) claims a slot, later occurrences replace in place.
            order = np.argsort(query_codes[new_ops], kind="stable")
            run_start = run_starts(query_codes[new_ops][order])
            run_ids = np.cumsum(run_start) - 1
            first_ops = new_ops[order[run_start]]  # min op index of each run
            consuming_ops = np.sort(first_ops) if len(first_ops) < len(new_ops) else new_ops
            consuming[consuming_ops] = True
            dest_consuming = occupied[buckets[consuming_ops]] + group_ranks(
                buckets[consuming_ops]
            )
            dest_per_run = dest_consuming[np.searchsorted(consuming_ops, first_ops)]
            dest_new = np.empty(len(new_ops), dtype=np.int64)
            dest_new[order] = dest_per_run[run_ids]
            dest[new_ops] = dest_new
        return buckets, dest, consuming

    def _resolve_duplicates(
        self, snap: _Snapshot, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """INSERT destinations: every op claims the bucket's next EMPTY slot.

        Free slots (including recycled mid-chain ones) are consumed in scan
        order; overflow continues into appended slabs.
        """
        table = self.table
        n = len(keys)
        buckets = table.hash_fn.hash_array(keys)
        empty = snap.slot_key == C.EMPTY_KEY
        free_pos = snap.slot_pos[empty]
        free_counts = np.bincount(
            snap.slot_bucket[empty], minlength=snap.num_buckets
        ).astype(np.int64)
        free_offsets = np.zeros(snap.num_buckets + 1, dtype=np.int64)
        np.cumsum(free_counts, out=free_offsets[1:])

        ranks = group_ranks(buckets)
        dest = np.empty(n, dtype=np.int64)
        in_free = ranks < free_counts[buckets]
        dest[in_free] = free_pos[free_offsets[buckets[in_free]] + ranks[in_free]]
        overflow = ~in_free
        capacity = snap.chain_len * snap.eps
        dest[overflow] = capacity[buckets[overflow]] + (
            ranks[overflow] - free_counts[buckets[overflow]]
        )
        return buckets, dest, np.ones(n, dtype=bool)

    def _insert_resolved(
        self,
        keys: np.ndarray,
        values: Optional[np.ndarray],
        snap: _Snapshot,
        resolution: Tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> None:
        table = self.table
        cfg = table.config
        n = len(keys)
        base_warp, chunks = self._begin_kernel(n)
        if n == 0:
            return
        buckets, dest, consuming = resolution
        eps = snap.eps
        capacity = snap.chain_len * eps
        depth = dest // eps

        # A slot-consuming op whose destination is the first slot past the
        # current capacity appends a slab: it traverses to the tail, allocates,
        # CASes the pointer, re-reads the tail and follows into the new slab.
        append_ops = np.flatnonzero(consuming & (dest % eps == 0) & (dest >= capacity[buckets]))
        reads = depth + 1
        decodes = depth.copy()
        if append_ops.size:
            reads[append_ops] += 1
            decodes[append_ops] += (depth[append_ops] > 1).astype(np.int64)

        slab_map = _SlabMap(snap)
        tally = CounterTally()
        try:
            self._process_appends(tally, slab_map, append_ops, buckets, depth, base_warp)
        except _AppendFailed as failed:
            self._finish_partial_insert(
                keys, values, tally, slab_map, resolution, reads, decodes,
                depth, base_warp, failed.op_index,
            )
            raise failed.error

        iters = int(reads.sum())
        base_shuffles = 3 if cfg.key_value else 2
        self._tally_traversal(
            tally,
            iter_instructions=C.REPLACE_ITER_INSTRUCTIONS,
            chunks=chunks,
            iters=iters,
            decodes=int(decodes.sum()),
            shuffles=base_shuffles * iters + (iters - n),
        )
        if cfg.key_value:
            tally.add("atomic64", n)
        else:
            # Key-only REPLACE of an already-present key is a no-op (no CAS);
            # only slot-claiming insertions issue the 32-bit CAS.
            tally.add("atomic32", int(consuming.sum()))

        self._apply_insert_writes(keys, values, slab_map, buckets, dest, consuming, None)
        tally.commit(table.device.counters)

    def _apply_insert_writes(
        self,
        keys: np.ndarray,
        values: Optional[np.ndarray],
        slab_map: _SlabMap,
        buckets: np.ndarray,
        dest: np.ndarray,
        consuming: np.ndarray,
        limit: Optional[int],
    ) -> None:
        """Write resolved insertions into the stores (ops ``< limit`` only).

        Key-value REPLACE CASes (key, value) for every op (replacing in place
        re-writes the pair), key-only mode only writes newly claimed slots.
        The last write to a slot wins, as in serial order.
        """
        cfg = self.table.config
        snap = slab_map.snap
        n = len(keys) if limit is None else limit
        write_ops = (
            np.arange(n, dtype=np.int64)
            if cfg.key_value
            else np.flatnonzero(consuming[:n])
        )
        if not write_ops.size:
            return
        if bool(consuming[:n].all()) or not cfg.key_value:
            # Every written slot is distinct (slot-claiming ops claim distinct
            # slots; key-only mode writes nothing else).
            keep = write_ops
        else:
            slot_ids = buckets[write_ops] * (int(dest.max()) + 1) + dest[write_ops]
            # Keep the last write per slot: reverse before marking run starts.
            order = np.argsort(slot_ids, kind="stable")[::-1]
            keep = write_ops[order[run_starts(slot_ids[order])]]

        keep_depth = dest[keep] // snap.eps
        store_idx, rows = slab_map.locations(buckets[keep], keep_depth)
        lanes = snap.key_lanes[dest[keep] % snap.eps]
        writes = [(lanes, keys[keep])]
        if cfg.key_value:
            writes.append((lanes + 1, values[keep]))
        slab_map.scatter(store_idx, rows, *writes)

    def _finish_partial_insert(
        self,
        keys: np.ndarray,
        values: Optional[np.ndarray],
        tally: CounterTally,
        slab_map: _SlabMap,
        resolution: Tuple[np.ndarray, np.ndarray, np.ndarray],
        reads: np.ndarray,
        decodes: np.ndarray,
        depth: np.ndarray,
        base_warp: int,
        failed_op: int,
    ) -> None:
        """Mirror the reference schedule's partial effects of a failed append.

        Operations before ``failed_op`` executed fully; ``failed_op`` itself
        traversed its chain and died inside ``warp_allocate`` (whose own
        events the real allocator already charged).  Later operations — and
        later warps — never ran.
        """
        table = self.table
        cfg = table.config
        launched_chunks = failed_op // WARP_SIZE + 1
        table._warp_counter = base_warp + launched_chunks
        buckets, dest, consuming = resolution

        prefix_iters = int(reads[:failed_op].sum())
        chain = int(depth[failed_op])  # tail depth the failing op reached
        base_shuffles = 3 if cfg.key_value else 2
        self._tally_traversal(
            tally,
            iter_instructions=C.REPLACE_ITER_INSTRUCTIONS,
            chunks=launched_chunks,
            iters=prefix_iters + chain,
            decodes=int(decodes[:failed_op].sum()) + (chain - 1),
            shuffles=base_shuffles * (prefix_iters + chain)
            + (prefix_iters - failed_op)
            + chain,
        )
        # The failing op's last iteration issued the candidate ballot but died
        # before the end-of-loop work-queue ballot.
        tally.add("warp_ballots", -1)
        if cfg.key_value:
            tally.add("atomic64", failed_op)
        else:
            tally.add("atomic32", int(consuming[:failed_op].sum()))

        self._apply_insert_writes(keys, values, slab_map, buckets, dest, consuming, failed_op)
        tally.commit(table.device.counters)

    # ------------------------------------------------------------------ #
    # CONCURRENT MIXED BATCHES (unscheduled; Figure 7 fast path)
    # ------------------------------------------------------------------ #

    def concurrent_batch(
        self,
        op_codes: np.ndarray,
        keys: np.ndarray,
        values: Optional[np.ndarray],
    ) -> np.ndarray:
        """Resolve an *unscheduled* mixed batch on the phased serial schedule.

        Mirrors ``run_sequential`` over the reference driver's per-chunk
        (insert, delete, search) programs: operations execute serially in
        ``(chunk, phase, lane)`` order, so results, final table state and the
        synthesized counters are bit-identical to the reference generators.
        Interleaved phases mutate the chains later phases traverse, so the
        batch splits into two resolution strategies:

        * **Schedule-dependent operations** are replayed serially against
          incremental per-bucket slot lists: all insertions, plus deletions
          and searches whose key some other operation in the batch also
          touches.  Slab appends call the real allocator under the triggering
          warp's id in global order.
        * **Schedule-invariant operations** resolve vectorized against the
          snapshot, like the bulk paths: searches of keys no mutation
          touches, and (under unique keys) single deletions of keys nothing
          else touches — the key's occurrence set cannot change before they
          run.  Only a *miss* traversal length depends on time (chains grow
          as earlier insertions append slabs); it is reconstructed from the
          append log with ``searchsorted``.

        State changes are collected in a write log (slot-granular, last write
        wins) and scattered into the stores in one vectorized pass.
        """
        table = self.table
        cfg = table.config
        snap = _Snapshot(table.lists, cfg)
        if cfg.unique_keys and not snap.is_canonical():
            # Same guard as bulk_insert: non-canonical REPLACE scan races are
            # only resolved faithfully by the reference schedule.
            return table._reference_concurrent_batch(op_codes, keys, values, None, None)

        n = len(keys)
        base_warp, chunks = self._begin_kernel(n)
        if n == 0:
            return np.zeros(0, dtype=np.uint32)

        buckets = table.hash_fn.hash_array(keys)
        # Operations with codes outside {INSERT, DELETE, SEARCH} join no
        # program in the reference driver; they occupy warp slots but execute
        # nothing and leave their result at 0.
        phases_all = np.full(n, -1, dtype=np.int64)
        phases_all[op_codes == C.OP_INSERT] = 0
        phases_all[op_codes == C.OP_DELETE] = 1
        phases_all[op_codes == C.OP_SEARCH] = 2
        valid = np.flatnonzero(phases_all >= 0)
        order, program_start = phased_order(valid // WARP_SIZE, phases_all[valid])
        serial_all = valid[order]  # op indices in serial execution order
        phases_serial = phases_all[serial_all]
        skeys = keys[serial_all]

        # --- split schedule-resolvable operations out of the serial replay ---
        # Group operations by key once; per-key phase counts decide which
        # operations genuinely need the serial replay.  Keys nothing inserts
        # have a frozen occurrence set except for (under unique keys) a single
        # deletion, whose serial rank fully determines what each search of
        # that key observes — no replay needed for any of them.
        is_delete = phases_serial == 1
        is_search = phases_serial == 2
        _, inv = np.unique(skeys, return_inverse=True)
        num_groups = int(inv.max()) + 1 if inv.size else 0
        has_insert = (np.bincount(inv[phases_serial == 0], minlength=num_groups) > 0)[inv]
        delete_count = np.bincount(inv[is_delete], minlength=num_groups)[inv]
        no_rank = len(serial_all) + 1
        delete_rank = np.full(num_groups, no_rank, dtype=np.int64)
        delete_rank[inv[is_delete]] = np.flatnonzero(is_delete)
        if cfg.unique_keys:
            # A single deletion of a never-inserted key tombstones a slot no
            # replayed operation ever looks at; searches of that key hit the
            # snapshot before the deletion's rank and miss after it.  (With
            # duplicates allowed, deletions recycle slots as EMPTY, which
            # later insertions claim — those stay in the replay.)
            vec_delete = is_delete & ~has_insert & (delete_count == 1)
            vec_search = is_search & ~has_insert & (delete_count <= 1)
        else:
            vec_delete = np.zeros(len(serial_all), dtype=bool)
            vec_search = is_search & ~has_insert & (delete_count == 0)

        replay_serial = np.flatnonzero(~(vec_search | vec_delete))
        replay_ops_arr = serial_all[replay_serial]
        replay_serial_l = replay_serial.tolist()

        eps = snap.eps
        kv = cfg.key_value
        replace = cfg.unique_keys
        base_sh = 3 if kv else 2
        empty = int(C.EMPTY_KEY)
        empty_value = int(C.EMPTY_VALUE)
        not_found = int(C.SEARCH_NOT_FOUND)
        tombstone = int(C.DELETED_KEY) if replace else empty
        delete_words = 2 if (kv and not replace) else 1

        slab_map = _SlabMap(snap)
        counters = table.device.counters
        results_l = [0] * n
        #: one (bucket, serial rank) entry per appended slab, in append order
        append_buckets: List[int] = []
        append_ranks: List[int] = []
        #: write log, one entry per written 32-bit word, in schedule order
        klog_bucket: List[int] = []
        klog_pos: List[int] = []
        klog_word: List[int] = []
        vlog_bucket: List[int] = []
        vlog_pos: List[int] = []
        vlog_word: List[int] = []

        tally = CounterTally()
        upsert_iters = delete_iters = search_iters = 0
        decodes = shuffles = atomic32 = atomic64 = write_words = 0
        ballot_adjust = 0
        position = 0
        error: Optional[AllocationError] = None

        # The Gamma workloads usually leave a pure-insert replay (their
        # deletions and searches are schedule-resolvable), and insertions
        # against a static snapshot are exactly what the bulk REPLACE/INSERT
        # rank arithmetic resolves — the vectorized tombstones only turn live
        # slots into non-EMPTY tombstones, which neither the canonical layout
        # nor the snapshot's occupied counts depend on.  Skip the serial
        # replay loop entirely in that case.
        pure_insert = (
            replay_serial.size > 0 and int(phases_serial[replay_serial].max()) == 0
        )

        if pure_insert:
            rkeys = keys[replay_ops_arr]
            rvalues = values[replay_ops_arr] if kv else None
            if replace:
                r_buckets, dest, consuming = self._resolve_unique(snap, rkeys)
            else:
                r_buckets, dest, consuming = self._resolve_duplicates(snap, rkeys)
            depth = dest // eps
            capacity = snap.chain_len * eps
            append_local = np.flatnonzero(
                consuming & (dest % eps == 0) & (dest >= capacity[r_buckets])
            )
            reads = depth + 1
            decodes_arr = depth.copy()
            if append_local.size:
                reads[append_local] += 1
                decodes_arr[append_local] += (depth[append_local] > 1).astype(np.int64)

                def log_append(local: int, bucket: int, chain: int) -> None:
                    append_buckets.append(bucket)
                    append_ranks.append(replay_serial_l[local])

                try:
                    self._process_appends(
                        tally, slab_map, append_local, r_buckets, depth, base_warp,
                        warp_ops=replay_ops_arr, on_append=log_append,
                    )
                except _AppendFailed as failed:
                    error = failed.error
                    position = failed.op_index
            if error is None:
                iters = int(reads.sum())
                upsert_iters += iters
                decodes += int(decodes_arr.sum())
                shuffles += base_sh * iters + (iters - len(rkeys))
                if kv:
                    atomic64 += len(rkeys)
                else:
                    atomic32 += int(consuming.sum())
                self._apply_insert_writes(
                    rkeys, rvalues, slab_map, r_buckets, dest, consuming, None
                )
            else:
                # Mirror _finish_partial_insert on the concurrent tallies:
                # operations before the failing one applied fully, the
                # failing one traversed to its tail and died allocating.
                chain = int(depth[position])
                prefix_iters = int(reads[:position].sum())
                upsert_iters += prefix_iters + chain
                decodes += int(decodes_arr[:position].sum()) + (chain - 1)
                shuffles += (
                    base_sh * (prefix_iters + chain) + (prefix_iters - position) + chain
                )
                ballot_adjust = -1
                if kv:
                    atomic64 += position
                else:
                    atomic32 += int(consuming[:position].sum())
                self._apply_insert_writes(
                    rkeys, rvalues, slab_map, r_buckets, dest, consuming, position
                )
        # Python-native views for the replay loop (plain ints and list slices
        # are much faster than NumPy scalars and per-bucket array calls).
        if pure_insert or not replay_serial.size:
            replay_ops, replay_phases, replay_keys, replay_buckets = [], [], [], []
            models: Dict[int, List[object]] = {}
            values_l = slot_keys_all = vals_all = slot_off = chain_l = None
        else:
            replay_ops = replay_ops_arr.tolist()
            replay_phases = phases_serial[replay_serial].tolist()
            replay_keys = keys[replay_ops_arr].tolist()
            replay_buckets = buckets[replay_ops_arr].tolist()
            values_l = values.tolist() if kv else None
            slot_keys_flat = snap.slot_key
            vals_flat = snap.words[:, snap.key_lanes + 1].ravel() if kv else None
            slot_off = snap.offsets
            chain_arr = snap.chain_len
            #: bucket -> [slot keys (scan order), slot values or None, chain]
            models = {}

        for op, phase, bucket, key in zip(replay_ops, replay_phases, replay_buckets, replay_keys):
            try:
                model = models[bucket]
            except KeyError:
                # Lazy per-bucket materialization: only buckets the replay
                # actually touches pay the array-to-list conversion.
                chain_len = int(chain_arr[bucket])
                lo = int(slot_off[bucket]) * eps
                hi = lo + chain_len * eps
                model = models[bucket] = [
                    slot_keys_flat[lo:hi].tolist(),
                    vals_flat[lo:hi].tolist() if kv else None,
                    chain_len,
                ]
            slots = model[0]

            if phase == 2:  # SEARCH
                try:
                    slot = slots.index(key)
                except ValueError:
                    iters = model[2]
                    shuffles += 3 * iters
                    results_l[op] = not_found
                else:
                    iters = slot // eps + 1
                    shuffles += 3 * iters - (0 if kv else 1)
                    results_l[op] = model[1][slot] if kv else key
                search_iters += iters
                decodes += iters - 1
            elif phase == 1:  # DELETE
                try:
                    slot = slots.index(key)
                except ValueError:
                    iters = model[2]
                    shuffles += 3 * iters
                else:
                    iters = slot // eps + 1
                    shuffles += 3 * iters - 1
                    slots[slot] = tombstone
                    klog_bucket.append(bucket)
                    klog_pos.append(slot)
                    klog_word.append(tombstone)
                    if kv and not replace:
                        model[1][slot] = empty_value
                        vlog_bucket.append(bucket)
                        vlog_pos.append(slot)
                        vlog_word.append(empty_value)
                    write_words += delete_words
                    results_l[op] = 1
                delete_iters += iters
                decodes += iters - 1
            else:  # INSERT / REPLACE
                value = values_l[op] if kv else 0
                dest = -1
                inplace = False
                if replace:
                    try:
                        match = slots.index(key)
                    except ValueError:
                        match = -1
                    try:
                        free = slots.index(empty)
                    except ValueError:
                        free = -1
                    if match >= 0 and (free < 0 or match < free):
                        dest = match
                        inplace = True
                    else:
                        dest = free
                else:
                    try:
                        dest = slots.index(empty)
                    except ValueError:
                        dest = -1
                if dest >= 0:
                    iters = dest // eps + 1
                    upsert_iters += iters
                    decodes += iters - 1
                    shuffles += base_sh * iters + (iters - 1)
                else:
                    # Append: traverse to the tail, allocate under the
                    # triggering warp's id, link, re-read the tail, follow.
                    chain = model[2]
                    warp = Warp(base_warp + op // WARP_SIZE, counters)
                    try:
                        address = table.alloc.warp_allocate(warp)
                    except AllocationError as failure:
                        # The failing op traversed its chain and died inside
                        # warp_allocate (whose own events are already
                        # charged); its last iteration issued the candidate
                        # ballot but not the end-of-loop ballot.
                        upsert_iters += chain
                        decodes += chain - 1
                        shuffles += (base_sh + 1) * chain
                        ballot_adjust = -1
                        error = failure
                        break
                    atomic32 += 1  # the pointer-append CAS (cannot fail)
                    tail_store, tail_row = slab_map.location(bucket, chain - 1)
                    tail_store[tail_row, C.ADDRESS_LANE] = np.uint32(address)
                    store, row = table.alloc.slab_view(address)
                    slab_map.register_append(bucket, chain, store, row)
                    append_buckets.append(bucket)
                    append_ranks.append(replay_serial_l[position])
                    slots.extend([empty] * eps)
                    if kv:
                        model[1].extend([empty_value] * eps)
                    model[2] = chain + 1
                    dest = chain * eps
                    iters = chain + 2
                    upsert_iters += iters
                    decodes += chain + (1 if chain > 1 else 0)
                    shuffles += base_sh * iters + (iters - 1)
                if inplace:
                    # The 64-bit CAS rewrites the whole pair in place; the
                    # key-only REPLACE of a present key is a no-op (no CAS).
                    if kv:
                        model[1][dest] = value
                        atomic64 += 1
                        klog_bucket.append(bucket)
                        klog_pos.append(dest)
                        klog_word.append(key)
                        vlog_bucket.append(bucket)
                        vlog_pos.append(dest)
                        vlog_word.append(value)
                else:
                    slots[dest] = key
                    klog_bucket.append(bucket)
                    klog_pos.append(dest)
                    klog_word.append(key)
                    if kv:
                        model[1][dest] = value
                        atomic64 += 1
                        vlog_bucket.append(bucket)
                        vlog_pos.append(dest)
                        vlog_word.append(value)
                    else:
                        atomic32 += 1
            position += 1

        # One initial work-queue ballot per program *started*.  On the happy
        # path every program runs; after a mid-batch allocation failure only
        # programs up to (and including) the failing operation's ever issued
        # their initial ballot (generators are lazy under run_sequential),
        # and schedule-invariant operations only count if they precede it.
        if error is None:
            programs = int(program_start.sum())
            vec_search_serial = np.flatnonzero(vec_search)
            vec_delete_serial = np.flatnonzero(vec_delete)
        else:
            failed_rank = replay_serial_l[position]
            programs = int(program_start[: failed_rank + 1].sum())
            vec_search_serial = np.flatnonzero(vec_search[:failed_rank])
            vec_delete_serial = np.flatnonzero(vec_delete[:failed_rank])
        results = np.asarray(results_l, dtype=np.uint32)

        vec_tombstones: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if vec_search_serial.size or vec_delete_serial.size:
            codes, positions = snap.live_first_occurrences()
            if append_buckets:
                stride = len(serial_all) + 1
                append_codes = np.asarray(append_buckets, dtype=np.int64) * stride + np.asarray(
                    append_ranks, dtype=np.int64
                )
                append_codes.sort()

            def chains_at(miss_buckets: np.ndarray, miss_ranks: np.ndarray) -> np.ndarray:
                """Chain length of each bucket at the given serial rank.

                The snapshot chain plus every slab appended by an earlier
                (lower serial rank) operation on the same bucket.
                """
                chains = snap.chain_len[miss_buckets]
                if not append_buckets:
                    return chains
                lo = miss_buckets * stride
                return chains + (
                    np.searchsorted(append_codes, lo + miss_ranks)
                    - np.searchsorted(append_codes, lo)
                )

            if vec_search_serial.size:
                vec_ops = serial_all[vec_search_serial]
                vq_keys = keys[vec_ops]
                vq_buckets = buckets[vec_ops]
                found, index = first_occurrence(codes, combine_codes(vq_buckets, vq_keys))
                # A search past its key's (single) deletion rank misses; with
                # no deletion of the key, delete_rank sorts after everything.
                found &= vec_search_serial < delete_rank[inv[vec_search_serial]]
                pos = positions[index[found]]
                if error is None:
                    if kv:
                        results[vec_ops] = not_found
                        results[vec_ops[found]] = snap.values_at(vq_buckets[found], pos)
                    else:
                        results[vec_ops] = np.where(found, vq_keys, np.uint32(not_found))
                miss = ~found
                vec_iters = int((pos // eps + 1).sum()) + int(
                    chains_at(vq_buckets[miss], vec_search_serial[miss]).sum()
                )
                search_iters += vec_iters
                decodes += vec_iters - int(vec_ops.size)
                shuffles += 3 * vec_iters - (0 if kv else int(found.sum()))

            if vec_delete_serial.size:
                vd_ops = serial_all[vec_delete_serial]
                vd_keys = keys[vd_ops]
                vd_buckets = buckets[vd_ops]
                found, index = first_occurrence(codes, combine_codes(vd_buckets, vd_keys))
                pos = positions[index[found]]
                found_count = int(found.sum())
                results[vd_ops[found]] = 1
                miss = ~found
                vec_iters = int((pos // eps + 1).sum()) + int(
                    chains_at(vd_buckets[miss], vec_delete_serial[miss]).sum()
                )
                delete_iters += vec_iters
                decodes += vec_iters - int(vd_ops.size)
                shuffles += 3 * vec_iters - found_count
                write_words += found_count  # unique mode: one tombstone word
                vec_tombstones = (vd_buckets[found], pos)

        decode_wi, decode_shared = self._decode_cost
        total_iters = upsert_iters + delete_iters + search_iters
        tally.add("coalesced_read_transactions", total_iters)
        tally.add("warp_ballots", programs + 2 * total_iters + ballot_adjust)
        tally.add("warp_shuffles", shuffles)
        tally.add(
            "warp_instructions",
            (C.REPLACE_ITER_INSTRUCTIONS + 2) * upsert_iters
            + (C.DELETE_ITER_INSTRUCTIONS + 2) * delete_iters
            + (C.SEARCH_ITER_INSTRUCTIONS + 2) * search_iters
            + decode_wi * decodes,
        )
        tally.add("shared_reads", decode_shared * decodes)
        tally.add("atomic32", atomic32)
        tally.add("atomic64", atomic64)
        tally.add("uncoalesced_write_words", write_words)

        if vec_tombstones is not None:
            klog_bucket.extend(vec_tombstones[0].tolist())
            klog_pos.extend(vec_tombstones[1].tolist())
            klog_word.extend([tombstone] * len(vec_tombstones[0]))
        self._scatter_lane_writes(slab_map, klog_bucket, klog_pos, klog_word, 0)
        if kv:
            self._scatter_lane_writes(slab_map, vlog_bucket, vlog_pos, vlog_word, 1)
        tally.commit(counters)
        if error is not None:
            raise error
        return results

    def _scatter_lane_writes(
        self,
        slab_map: _SlabMap,
        log_buckets: List[int],
        log_pos: List[int],
        log_words: List[int],
        lane_offset: int,
    ) -> None:
        """Apply one channel of the concurrent write log to the stores.

        Entries are in schedule order and slot-granular; the last write to a
        slot wins, exactly as in the serial reference schedule.
        ``lane_offset`` selects the key lane (0) or value lane (1) of each
        logged slot position.
        """
        if not log_buckets:
            return
        snap = slab_map.snap
        buckets = np.asarray(log_buckets, dtype=np.int64)
        pos = np.asarray(log_pos, dtype=np.int64)
        words = np.asarray(log_words, dtype=np.uint32)
        slot_ids = buckets * (int(pos.max()) + 1) + pos
        # Keep the last write per slot: reverse before marking run starts.
        order = np.argsort(slot_ids, kind="stable")[::-1]
        keep = order[run_starts(slot_ids[order])]
        buckets, pos, words = buckets[keep], pos[keep], words[keep]
        store_idx, rows = slab_map.locations(buckets, pos // snap.eps)
        lanes = snap.key_lanes[pos % snap.eps] + lane_offset
        slab_map.scatter(store_idx, rows, (lanes, words))
