"""The slab hash: a fully concurrent dynamic hash table for the (simulated) GPU.

This is the paper's primary contribution (Section III-C): a hash table with
chaining whose buckets are slab lists.  A direct-address table of ``B`` base
slabs heads ``B`` independent slab lists; keys are distributed with a simple
universal hash ``h(k; a, b) = ((a*k + b) mod p) mod B``.

:class:`SlabHash` exposes three levels of API:

* **Single-operation convenience** (``insert`` / ``search`` / ``delete`` /
  ``search_all`` / ``delete_all``) — host-style helpers that wrap one
  operation into a one-lane warp; handy for interactive use and tests, not
  meant for throughput.
* **Bulk operations** (``bulk_build`` / ``bulk_insert`` / ``bulk_search`` /
  ``bulk_delete``) — the paper's "static comparison" mode: every thread gets
  one element/query, 32 per warp, and the warps are drained sequentially
  (one legal concurrent schedule).  Used by Figures 4, 5 and 6.
* **Concurrent mixed batches** (``concurrent_batch``) — the paper's truly
  concurrent benchmark (Section VI-C): each thread in a batch gets one
  operation drawn from an operation distribution, all operation types mixed
  within warps, and the warps' procedures are interleaved by a seeded
  scheduler (or drained on the deterministic phased schedule when no
  scheduler is given).  Used by Figure 7.

Throughput numbers are obtained by measuring the device counters around a
bulk/concurrent call and applying :class:`repro.gpusim.costmodel.CostModel`;
see :mod:`repro.perf.harness`.
"""

from __future__ import annotations

import contextlib
import math
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import constants as C
from repro.core.bulk_exec import BACKENDS, BulkExecutor, get_default_backend
from repro.core.config import SlabAllocConfig, SlabConfig
from repro.core.flush import FlushResult, flush_all, flush_bucket
from repro.core.hashing import UniversalHash, is_user_key
from repro.core.resize import (
    LoadFactorPolicy,
    MigrationState,
    MigrationStepResult,
    ResizeResult,
    ResizeStats,
    begin_migration,
    migrate_step as _migrate_table_step,
    resize_table,
)
from repro.core.slab_alloc import SlabAlloc
from repro.core.slab_alloc_light import SlabAllocLight
from repro.core.slab_list import SlabListCollection
from repro.gpusim.device import Device
from repro.gpusim.scheduler import WarpScheduler, run_sequential
from repro.gpusim.warp import WARP_SIZE, Warp

__all__ = ["SlabHash"]


class SlabHash:
    """A dynamic, warp-cooperative hash table with chaining over slab lists.

    Parameters
    ----------
    num_buckets:
        Number of buckets B (base slabs).  Performance depends on the implied
        average slab count ``beta = n / (M * B)``; see
        :meth:`buckets_for_utilization` / :meth:`buckets_for_beta`.
    device:
        Simulated device; a fresh Tesla K40c model is created when omitted.
    key_value:
        ``True`` stores 64-bit key-value entries (15 per slab); ``False``
        stores 32-bit keys only (30 per slab).
    unique_keys:
        ``True`` gives REPLACE/DELETE semantics (a key occurs at most once);
        ``False`` gives INSERT/DELETE-first semantics with duplicates allowed.
    light_alloc:
        Use SlabAlloc-light (cheaper address decode, <=4 GB capacity).
    alloc / alloc_config:
        Supply an existing allocator, or a sizing config for a new one.
    seed:
        Seed for the universal hash function draw.
    backend:
        Bulk-execution backend: ``"vectorized"`` (default; batched NumPy
        resolution with exact counter synthesis, see
        :mod:`repro.core.bulk_exec`) or ``"reference"`` (the per-warp
        generator schedule).  Covers the ``bulk_*`` operations and
        *unscheduled* ``concurrent_batch`` calls (``scheduler=None``, the
        deterministic phased schedule); passing an explicit
        :class:`~repro.gpusim.scheduler.WarpScheduler` always runs the
        reference generators, since seeded interleavings are the whole point
        there.  ``None`` picks the process-wide default
        (:func:`repro.core.bulk_exec.set_default_backend`).
    policy:
        Optional :class:`~repro.core.resize.LoadFactorPolicy`.  With a policy
        whose ``auto`` flag is set (the default), the table consults it after
        every mutating batch and resizes itself back into the target beta
        band; with ``auto=False`` the policy is deferred and only applied
        when :meth:`maybe_resize` is called (e.g. by the service layer
        between micro-batches).  :attr:`resize_stats` accumulates the
        grow/shrink accounting either way.
    """

    def __init__(
        self,
        num_buckets: int,
        *,
        device: Optional[Device] = None,
        key_value: bool = True,
        unique_keys: bool = True,
        light_alloc: bool = False,
        alloc: Optional[SlabAlloc] = None,
        alloc_config: Optional[SlabAllocConfig] = None,
        seed: int = 0,
        backend: Optional[str] = None,
        policy: Optional[LoadFactorPolicy] = None,
    ) -> None:
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        backend = backend or get_default_backend()
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        self.device = device or Device()
        self.config = SlabConfig(key_value=key_value, unique_keys=unique_keys)
        if alloc is None:
            cfg = alloc_config or SlabAllocConfig()
            alloc = (
                SlabAllocLight(self.device, cfg, seed=seed)
                if light_alloc
                else SlabAlloc(self.device, cfg, seed=seed)
            )
        self.alloc = alloc
        self.lists = SlabListCollection(self.device, alloc, num_buckets, self.config)
        self.hash_fn = UniversalHash(num_buckets, seed=seed)
        self._warp_counter = 0
        self.backend = backend
        self._bulk_exec = BulkExecutor(self)
        self.policy = policy
        self.resize_stats = ResizeStats()
        self._in_resize = False
        #: In-flight incremental resize (``None`` when fully in one array).
        self.migration: Optional[MigrationState] = None

    # ------------------------------------------------------------------ #
    # Bucket sizing helpers (Fig. 4c)
    # ------------------------------------------------------------------ #

    @staticmethod
    def buckets_for_beta(num_elements: int, beta: float, *, key_value: bool = True) -> int:
        """Number of buckets so that ``beta = n / (M * B)`` hits the requested value."""
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        per_slab = C.PAIRS_PER_SLAB if key_value else C.KEYS_PER_SLAB
        return max(1, math.ceil(num_elements / (per_slab * beta)))

    @staticmethod
    def expected_utilization(beta: float, *, key_value: bool = True) -> float:
        """Expected memory utilization at average slab count ``beta`` (Fig. 4c model).

        Buckets receive a Poisson(lambda = beta * M) number of elements; each
        bucket occupies ``max(1, ceil(k / M))`` slabs.  Utilization is stored
        bytes over slab bytes.
        """
        per_slab = C.PAIRS_PER_SLAB if key_value else C.KEYS_PER_SLAB
        element_bytes = 8 if key_value else 4
        lam = beta * per_slab
        if lam <= 0:
            return 0.0
        # E[max(1, ceil(K / M))] for K ~ Poisson(lam), truncated at +10 sigma.
        upper = int(lam + 10 * math.sqrt(lam) + 10)
        expected_slabs = 0.0
        log_lam = math.log(lam)
        for k in range(upper + 1):
            log_p = k * log_lam - lam - math.lgamma(k + 1)
            p = math.exp(log_p)
            expected_slabs += p * max(1, math.ceil(k / per_slab))
        stored = lam * element_bytes
        return stored / (expected_slabs * C.SLAB_BYTES)

    @classmethod
    def buckets_for_utilization(
        cls, num_elements: int, utilization: float, *, key_value: bool = True
    ) -> int:
        """Number of buckets whose expected memory utilization matches the target.

        Inverts the Fig. 4c relation numerically (binary search on beta).
        """
        cfg = SlabConfig(key_value=key_value)
        if not 0.0 < utilization < cfg.max_memory_utilization:
            raise ValueError(
                f"target utilization must be in (0, {cfg.max_memory_utilization:.3f}), "
                f"got {utilization}"
            )
        lo, hi = 1e-3, 64.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if cls.expected_utilization(mid, key_value=key_value) < utilization:
                lo = mid
            else:
                hi = mid
        return cls.buckets_for_beta(num_elements, hi, key_value=key_value)

    # ------------------------------------------------------------------ #
    # Warp plumbing
    # ------------------------------------------------------------------ #

    def _next_warp(self) -> Warp:
        warp = Warp(self._warp_counter, self.device.counters)
        self._warp_counter += 1
        return warp

    def _validate_keys(self, keys: Union[Sequence[int], np.ndarray]) -> np.ndarray:
        # Two-step normalization: value inference first, then a wrap-cast to
        # uint64, so out-of-domain input (e.g. a negative key) reaches the
        # range check below and fails with the domain ValueError instead of
        # a conversion OverflowError.
        inferred = np.asarray(keys)  # repro-lint: disable=np-dtype -- wrap-cast on the next line is the explicit dtype step
        keys = inferred.astype(np.uint64, copy=False)
        if keys.size and int(keys.max()) >= C.MAX_USER_KEY:
            raise ValueError(
                f"keys must be below 0x{C.MAX_USER_KEY:08X} "
                "(the two largest 32-bit values are reserved)"
            )
        return keys.astype(np.uint32)

    def _warp_chunks(self, count: int) -> Iterator[Tuple[int, int]]:
        """Yield (start, end) ranges of at most WARP_SIZE operations."""
        for start in range(0, count, WARP_SIZE):
            yield start, min(start + WARP_SIZE, count)

    @staticmethod
    def _pad_lane_array(values: np.ndarray, start: int, end: int, fill: int) -> np.ndarray:
        lane = np.full(WARP_SIZE, fill, dtype=np.uint32)
        lane[: end - start] = values[start:end]
        return lane

    @staticmethod
    def _fill_lane_array(
        lane: np.ndarray, values: np.ndarray, start: int, end: int, fill: int
    ) -> None:
        """Refill a reusable lane buffer in place (hot-loop variant of _pad_lane_array).

        Safe only when the previous chunk's warp program has been fully
        drained (the sequential bulk loops); ``concurrent_batch`` keeps
        per-warp arrays because its programs are live simultaneously.
        """
        lane[: end - start] = values[start:end]
        lane[end - start :] = fill

    # ------------------------------------------------------------------ #
    # Migration routing (incremental resize; see repro.core.resize)
    # ------------------------------------------------------------------ #

    @contextlib.contextmanager
    def _routed_to_new(self) -> Iterator[None]:
        """Temporarily execute against the migration's new bucket array.

        Both backends read ``self.lists`` / ``self.hash_fn`` at call time,
        so swapping them routes an entire sub-batch — results, state and
        synthesized counters — to the new array.
        """
        state = self.migration
        saved = (self.lists, self.hash_fn)
        self.lists, self.hash_fn = state.new_lists, state.new_hash
        try:
            yield
        finally:
            self.lists, self.hash_fn = saved

    def _migration_mask(self, keys: np.ndarray) -> np.ndarray:
        """Watermark routing: True where a key's old bucket already migrated.

        A migrated bucket's every occurrence lives in the new array, so each
        operation runs against exactly one array; relative order within each
        routed sub-batch is preserved, which keeps duplicate-key scan-order
        semantics intact mid-migration.
        """
        return self.hash_fn.hash_array(keys) < self.migration.watermark

    def _route_to_new(self, key_arr: np.ndarray) -> bool:
        """Single-key variant of :meth:`_migration_mask` (search_all/delete_all)."""
        state = self.migration
        if state is None or self._in_resize:
            return False
        return int(self.hash_fn.hash_array(key_arr)[0]) < state.watermark

    # ------------------------------------------------------------------ #
    # Single-operation convenience API
    # ------------------------------------------------------------------ #

    def insert(self, key: int, value: Optional[int] = None) -> None:
        """Insert one key (and value in key-value mode)."""
        if self.config.key_value and value is None:
            raise ValueError("key-value mode requires a value")
        if not is_user_key(key):
            raise ValueError(f"key 0x{int(key):08X} is outside the storable key domain")
        values = None if not self.config.key_value else np.array([value], dtype=np.uint32)
        self.bulk_insert(np.array([key], dtype=np.uint32), values)

    def search(self, key: int) -> Optional[int]:
        """Return the stored value (or the key itself in key-only mode), or ``None``."""
        result = int(self.bulk_search(np.array([key], dtype=np.uint32))[0])
        return None if result == C.SEARCH_NOT_FOUND else result

    def __contains__(self, key: int) -> bool:
        return self.search(key) is not None

    def delete(self, key: int) -> bool:
        """Delete the least-recent occurrence of ``key``; returns True if one was removed."""
        return bool(self.bulk_delete(np.array([key], dtype=np.uint32))[0])

    def search_all(self, key: int) -> List[int]:
        """Return every value stored under ``key`` (duplicates mode)."""
        key_arr = self._validate_keys([key])
        if self._route_to_new(key_arr):
            with self._routed_to_new():
                return self._search_all_impl(key_arr)
        return self._search_all_impl(key_arr)

    def _search_all_impl(self, key_arr: np.ndarray) -> List[int]:
        buckets = self.hash_fn.hash_array(key_arr)
        warp = self._next_warp()
        is_active = np.zeros(WARP_SIZE, dtype=bool)
        is_active[0] = True
        lane_keys = self._pad_lane_array(key_arr, 0, 1, C.EMPTY_KEY)
        lane_buckets = np.zeros(WARP_SIZE, dtype=np.int64)
        lane_buckets[0] = buckets[0]
        out: List[List[int]] = [[] for _ in range(WARP_SIZE)]
        self.device.launch_kernel()
        run_sequential(
            [self.lists.warp_search_all(warp, is_active, lane_buckets, lane_keys, out)]
        )
        return out[0]

    def delete_all(self, key: int) -> int:
        """Delete every occurrence of ``key``; returns the number removed."""
        key_arr = self._validate_keys([key])
        if self._route_to_new(key_arr):
            with self._routed_to_new():
                removed = self._delete_all_impl(key_arr)
        else:
            removed = self._delete_all_impl(key_arr)
        self._auto_resize()
        return removed

    def _delete_all_impl(self, key_arr: np.ndarray) -> int:
        buckets = self.hash_fn.hash_array(key_arr)
        warp = self._next_warp()
        is_active = np.zeros(WARP_SIZE, dtype=bool)
        is_active[0] = True
        lane_keys = self._pad_lane_array(key_arr, 0, 1, C.EMPTY_KEY)
        lane_buckets = np.zeros(WARP_SIZE, dtype=np.int64)
        lane_buckets[0] = buckets[0]
        out = np.zeros(WARP_SIZE, dtype=np.int64)
        self.device.launch_kernel()
        run_sequential(
            [self.lists.warp_delete_all(warp, is_active, lane_buckets, lane_keys, out)]
        )
        return int(out[0])

    # ------------------------------------------------------------------ #
    # Bulk operations (Figures 4, 5 and 6)
    # ------------------------------------------------------------------ #

    def bulk_build(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> None:
        """Build the table from scratch by dynamically inserting every element.

        In the slab hash there is no difference between a bulk build and
        incremental insertion of a batch (Section VI-A, footnote 3).
        """
        self.bulk_insert(keys, values)

    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> None:
        """Insert a batch: one element per thread, WCWS processing per warp.

        During an incremental migration the batch is split by the per-bucket
        watermark: elements whose (old) bucket has migrated go to the new
        array, the rest to the old one, order preserved within each part.
        """
        keys = self._validate_keys(keys)
        if self.config.key_value:
            if values is None:
                raise ValueError("key-value mode requires a values array")
            values = np.asarray(values, dtype=np.uint32)
            if values.shape != keys.shape:
                raise ValueError("keys and values must have the same length")
        if self.migration is None or self._in_resize:
            self._exec_bulk_insert(keys, values)
        else:
            mask = self._migration_mask(keys)
            if not mask.any():
                self._exec_bulk_insert(keys, values)
            elif mask.all():
                with self._routed_to_new():
                    self._exec_bulk_insert(keys, values)
            else:
                old = ~mask
                self._exec_bulk_insert(keys[old], values[old] if values is not None else None)
                with self._routed_to_new():
                    self._exec_bulk_insert(
                        keys[mask], values[mask] if values is not None else None
                    )
        self._auto_resize()

    def _exec_bulk_insert(self, keys: np.ndarray, values: Optional[np.ndarray]) -> None:
        if self.backend == "vectorized":
            self._bulk_exec.bulk_insert(keys, values)
        else:
            self._reference_bulk_insert(keys, values)

    def _reference_bulk_insert(self, keys: np.ndarray, values: Optional[np.ndarray]) -> None:
        """The per-warp generator schedule (one legal concurrent schedule)."""
        buckets = self.hash_fn.hash_array(keys)
        self.device.launch_kernel()
        op = self.lists.warp_replace if self.config.unique_keys else self.lists.warp_insert

        # Lane buffers are reused across chunks: each chunk's warp program is
        # fully drained by run_sequential before the next refill.
        is_active = np.zeros(WARP_SIZE, dtype=bool)
        lane_keys = np.empty(WARP_SIZE, dtype=np.uint32)
        lane_buckets = np.zeros(WARP_SIZE, dtype=np.int64)
        lane_values = np.empty(WARP_SIZE, dtype=np.uint32) if self.config.key_value else None
        for start, end in self._warp_chunks(len(keys)):
            warp = self._next_warp()
            is_active[: end - start] = True
            is_active[end - start :] = False
            self._fill_lane_array(lane_keys, keys, start, end, C.EMPTY_KEY)
            lane_buckets[: end - start] = buckets[start:end]
            lane_buckets[end - start :] = 0
            if self.config.key_value:
                self._fill_lane_array(lane_values, values, start, end, C.EMPTY_VALUE)
            run_sequential([op(warp, is_active, lane_buckets, lane_keys, lane_values)])

    def bulk_search(self, queries: Sequence[int]) -> np.ndarray:
        """Search a batch of queries; returns values (or ``SEARCH_NOT_FOUND``).

        During an incremental migration each query runs against the single
        array its key currently lives in (watermark routing), and results
        are scattered back to the original batch positions.
        """
        queries = self._validate_keys(queries)
        if self.migration is None or self._in_resize:
            return self._exec_bulk_search(queries)
        mask = self._migration_mask(queries)
        if not mask.any():
            return self._exec_bulk_search(queries)
        if mask.all():
            with self._routed_to_new():
                return self._exec_bulk_search(queries)
        results = np.empty(len(queries), dtype=np.uint32)
        old = ~mask
        results[old] = self._exec_bulk_search(queries[old])
        with self._routed_to_new():
            results[mask] = self._exec_bulk_search(queries[mask])
        return results

    def _exec_bulk_search(self, queries: np.ndarray) -> np.ndarray:
        if self.backend == "vectorized":
            return self._bulk_exec.bulk_search(queries)
        return self._reference_bulk_search(queries)

    def _reference_bulk_search(self, queries: np.ndarray) -> np.ndarray:
        buckets = self.hash_fn.hash_array(queries)
        results = np.full(len(queries), C.SEARCH_NOT_FOUND, dtype=np.uint32)
        self.device.launch_kernel()

        is_active = np.zeros(WARP_SIZE, dtype=bool)
        lane_keys = np.empty(WARP_SIZE, dtype=np.uint32)
        lane_buckets = np.zeros(WARP_SIZE, dtype=np.int64)
        out_values = np.empty(WARP_SIZE, dtype=np.uint32)
        for start, end in self._warp_chunks(len(queries)):
            warp = self._next_warp()
            is_active[: end - start] = True
            is_active[end - start :] = False
            self._fill_lane_array(lane_keys, queries, start, end, C.EMPTY_KEY)
            lane_buckets[: end - start] = buckets[start:end]
            lane_buckets[end - start :] = 0
            out_values[:] = C.SEARCH_NOT_FOUND
            run_sequential(
                [self.lists.warp_search(warp, is_active, lane_buckets, lane_keys, out_values)]
            )
            results[start:end] = out_values[: end - start]
        return results

    def bulk_delete(self, keys: Sequence[int]) -> np.ndarray:
        """Delete a batch of keys; returns per-key removed counts (0 or 1).

        During an incremental migration each delete runs against the single
        array its key currently lives in (watermark routing).
        """
        keys = self._validate_keys(keys)
        if self.migration is None or self._in_resize:
            removed = self._exec_bulk_delete(keys)
        else:
            mask = self._migration_mask(keys)
            if not mask.any():
                removed = self._exec_bulk_delete(keys)
            elif mask.all():
                with self._routed_to_new():
                    removed = self._exec_bulk_delete(keys)
            else:
                removed = np.zeros(len(keys), dtype=np.int64)
                old = ~mask
                removed[old] = self._exec_bulk_delete(keys[old])
                with self._routed_to_new():
                    removed[mask] = self._exec_bulk_delete(keys[mask])
        self._auto_resize()
        return removed

    def _exec_bulk_delete(self, keys: np.ndarray) -> np.ndarray:
        if self.backend == "vectorized":
            return self._bulk_exec.bulk_delete(keys)
        return self._reference_bulk_delete(keys)

    def _reference_bulk_delete(self, keys: np.ndarray) -> np.ndarray:
        buckets = self.hash_fn.hash_array(keys)
        removed = np.zeros(len(keys), dtype=np.int64)
        self.device.launch_kernel()

        is_active = np.zeros(WARP_SIZE, dtype=bool)
        lane_keys = np.empty(WARP_SIZE, dtype=np.uint32)
        lane_buckets = np.zeros(WARP_SIZE, dtype=np.int64)
        out_deleted = np.empty(WARP_SIZE, dtype=np.int64)
        for start, end in self._warp_chunks(len(keys)):
            warp = self._next_warp()
            is_active[: end - start] = True
            is_active[end - start :] = False
            self._fill_lane_array(lane_keys, keys, start, end, C.EMPTY_KEY)
            lane_buckets[: end - start] = buckets[start:end]
            lane_buckets[end - start :] = 0
            out_deleted[:] = 0
            run_sequential(
                [self.lists.warp_delete(warp, is_active, lane_buckets, lane_keys, out_deleted)]
            )
            removed[start:end] = out_deleted[: end - start]
        return removed

    # ------------------------------------------------------------------ #
    # Concurrent mixed batches (Figure 7)
    # ------------------------------------------------------------------ #

    def concurrent_batch(
        self,
        op_codes: Sequence[int],
        keys: Sequence[int],
        values: Optional[Sequence[int]] = None,
        *,
        scheduler: Optional[WarpScheduler] = None,
        wave_size: Optional[int] = None,
    ) -> np.ndarray:
        """Execute a batch of mixed operations truly concurrently.

        ``op_codes[i]`` is one of ``OP_INSERT``, ``OP_DELETE``, ``OP_SEARCH``
        (constants in :mod:`repro.core.constants`); operation ``i`` uses
        ``keys[i]`` (and ``values[i]`` for insertions in key-value mode).
        Operations are assigned one per thread exactly as generated, so all
        types can occur within a single warp; each warp runs one procedure per
        operation type present (as in the paper's concurrent benchmark), and
        all procedures of all warps are interleaved by ``scheduler``.

        When ``scheduler`` is ``None`` the warps' procedures are drained
        sequentially (one legal concurrent schedule, deterministic); on the
        ``"vectorized"`` backend that case runs through the fast path of
        :class:`~repro.core.bulk_exec.BulkExecutor`, with bit-identical
        results, state and counters.  Passing a scheduler always executes the
        reference generators, because interleaving at memory-access
        granularity is exactly what a scheduler is for; ``wave_size`` bounds
        how many warps are concurrently live under a scheduler (it is ignored
        without one).

        Returns an array with, per operation: the found value for searches
        (``SEARCH_NOT_FOUND`` if absent), 1/0 for deletions (removed or not),
        and 0 for insertions.
        """
        op_codes = np.asarray(op_codes, dtype=np.int64)
        keys = self._validate_keys(keys)
        if op_codes.shape != keys.shape:
            raise ValueError("op_codes and keys must have the same length")
        if self.config.key_value:
            if values is None:
                raise ValueError("key-value mode requires a values array")
            values = np.asarray(values, dtype=np.uint32)
            if values.shape != keys.shape:
                raise ValueError("keys and values must have the same length")

        if self.migration is None or self._in_resize:
            results = self._exec_concurrent(op_codes, keys, values, scheduler, wave_size)
        else:
            # Watermark routing: each operation runs against the single array
            # its key lives in; relative order within each part is preserved,
            # results are scattered back to the original batch positions.
            mask = self._migration_mask(keys)
            if not mask.any():
                results = self._exec_concurrent(op_codes, keys, values, scheduler, wave_size)
            elif mask.all():
                with self._routed_to_new():
                    results = self._exec_concurrent(
                        op_codes, keys, values, scheduler, wave_size
                    )
            else:
                results = np.zeros(len(keys), dtype=np.uint32)
                old = ~mask
                results[old] = self._exec_concurrent(
                    op_codes[old],
                    keys[old],
                    values[old] if values is not None else None,
                    scheduler,
                    wave_size,
                )
                with self._routed_to_new():
                    results[mask] = self._exec_concurrent(
                        op_codes[mask],
                        keys[mask],
                        values[mask] if values is not None else None,
                        scheduler,
                        wave_size,
                    )
        self._auto_resize()
        return results

    def _exec_concurrent(
        self,
        op_codes: np.ndarray,
        keys: np.ndarray,
        values: Optional[np.ndarray],
        scheduler: Optional[WarpScheduler],
        wave_size: Optional[int],
    ) -> np.ndarray:
        if scheduler is None and self.backend == "vectorized":
            return self._bulk_exec.concurrent_batch(op_codes, keys, values)
        return self._reference_concurrent_batch(op_codes, keys, values, scheduler, wave_size)

    def _reference_concurrent_batch(
        self,
        op_codes: np.ndarray,
        keys: np.ndarray,
        values: Optional[np.ndarray],
        scheduler: Optional[WarpScheduler],
        wave_size: Optional[int],
    ) -> np.ndarray:
        """The per-warp generator schedule of a mixed batch (any scheduler)."""
        buckets = self.hash_fn.hash_array(keys)
        results = np.zeros(len(keys), dtype=np.uint32)
        self.device.launch_kernel()

        programs = []
        collectors = []  # (kind, start, end, out_array)
        insert_op = self.lists.warp_replace if self.config.unique_keys else self.lists.warp_insert

        for start, end in self._warp_chunks(len(keys)):
            warp = self._next_warp()
            span = end - start
            lane_ops = np.zeros(WARP_SIZE, dtype=np.int64)
            lane_ops[:span] = op_codes[start:end]
            lane_keys = self._pad_lane_array(keys, start, end, C.EMPTY_KEY)
            lane_buckets = np.zeros(WARP_SIZE, dtype=np.int64)
            lane_buckets[:span] = buckets[start:end]
            lane_values = None
            if self.config.key_value:
                lane_values = self._pad_lane_array(values, start, end, C.EMPTY_VALUE)

            insert_mask = lane_ops == C.OP_INSERT
            delete_mask = lane_ops == C.OP_DELETE
            search_mask = lane_ops == C.OP_SEARCH

            if insert_mask.any():
                programs.append(
                    insert_op(warp, insert_mask, lane_buckets, lane_keys, lane_values)
                )
            if delete_mask.any():
                out_deleted = np.zeros(WARP_SIZE, dtype=np.int64)
                programs.append(
                    self.lists.warp_delete(warp, delete_mask, lane_buckets, lane_keys, out_deleted)
                )
                collectors.append(("delete", start, end, out_deleted))
            if search_mask.any():
                out_values = np.full(WARP_SIZE, C.SEARCH_NOT_FOUND, dtype=np.uint32)
                programs.append(
                    self.lists.warp_search(warp, search_mask, lane_buckets, lane_keys, out_values)
                )
                collectors.append(("search", start, end, out_values))

        if scheduler is None:
            run_sequential(programs)
        elif wave_size is not None:
            scheduler.run_in_waves(programs, wave_size)
        else:
            scheduler.run(programs)

        for kind, start, end, out in collectors:
            span = end - start
            mask = (op_codes[start:end] == C.OP_DELETE) if kind == "delete" else (
                op_codes[start:end] == C.OP_SEARCH
            )
            results[start:end][mask] = out[:span][mask].astype(np.uint32)
        return results

    # ------------------------------------------------------------------ #
    # Online resizing (see repro.core.resize)
    # ------------------------------------------------------------------ #

    def resize(self, num_buckets: int, *, trigger: str = "manual") -> ResizeResult:
        """Rebuild the table into ``num_buckets`` buckets, migrating live items.

        Migration runs through the bulk-insertion path of this table's
        backend (so it is charged to the device counters like any other
        kernel), old chained slabs are returned to the allocator, and the
        hash function keeps its ``(a, b)`` draw re-ranged to the new bucket
        count.  Resizing to the current size is a no-op.

        Raises ``RuntimeError`` while an incremental migration is in flight:
        drain it with :meth:`migrate_step` / :meth:`maybe_resize` first.
        """
        if self.migration is not None:
            raise RuntimeError(
                "an incremental migration is in flight; pump it with migrate_step() "
                "or maybe_resize() before a stop-the-world resize"
            )
        return resize_table(self, num_buckets, trigger=trigger)

    def begin_resize(
        self,
        num_buckets: int,
        *,
        trigger: str = "manual",
        step_buckets: Optional[int] = None,
    ) -> Optional[ResizeResult]:
        """Begin an incremental (non-blocking) resize to ``num_buckets``.

        Installs a :class:`~repro.core.resize.MigrationState`; no items move
        until :meth:`migrate_step` (or :meth:`maybe_resize`) pumps the
        migration.  Requesting the current size is a counted no-op, returned
        as a :class:`~repro.core.resize.ResizeResult`; otherwise ``None``.
        """
        return begin_migration(self, num_buckets, trigger=trigger, step_buckets=step_buckets)

    def migrate_step(self, max_buckets: Optional[int] = None) -> MigrationStepResult:
        """Advance the in-flight migration by one bounded band of buckets.

        See :func:`repro.core.resize.migrate_step` for semantics (atomic
        whole-bucket bands, strong exception guarantee, resumability).
        """
        return _migrate_table_step(self, max_buckets)

    def maybe_resize(self, *, max_steps: int = 8) -> List[ResizeResult]:
        """Pump the in-flight migration and/or apply the load-factor policy.

        With a migration in flight, up to ``max_steps`` incremental steps
        are advanced (policy decisions stay suppressed until it completes).
        Otherwise each step asks :meth:`LoadFactorPolicy.decide
        <repro.core.resize.LoadFactorPolicy.decide>` for a bucket count and
        performs that resize — as a stop-the-world rebuild, or, under an
        ``incremental`` policy, by beginning a migration that the remaining
        step budget (and later calls) pumps.  Returns the *completed*
        resizes; ``[]`` when quiescent or when a begun migration has not
        finished yet.
        """
        if self._in_resize:
            return []
        results: List[ResizeResult] = []
        steps = 0
        while steps < max_steps:
            if self.migration is not None:
                outcome = self.migrate_step()
                steps += 1
                if outcome.result is not None:
                    results.append(outcome.result)
                continue
            if self.policy is None:
                break
            decision = self.policy.decide(
                len(self), self.num_buckets, self.config.elements_per_slab
            )
            if decision is None:
                break
            if self.policy.incremental:
                if self.begin_resize(decision, trigger="policy") is not None:
                    break  # counted no-op; nothing to pump
                continue
            results.append(self.resize(decision, trigger="policy"))
            steps += 1
        return results

    def _auto_resize(self) -> None:
        """Post-batch hook: apply an automatic policy, if one is attached.

        With a migration in flight the hook advances at most one step per
        mutating batch, so migration work stays interleaved with — never
        ahead of — the request stream.  The moment that step *completes*
        the migration, the policy takes back control in the same hook, so
        an auto table is policy-quiescent after every batch that is not
        mid-migration (manual migrations can land anywhere; the policy
        reconciles as soon as they finish).
        """
        if self.policy is None or not self.policy.auto or self._in_resize:
            return
        if self.migration is not None:
            if self.migrate_step().result is None:
                return
            # fall through: the migration just finished; let the policy
            # reconcile the (possibly out-of-band) result right away
        if self.policy.incremental:
            self.maybe_resize(max_steps=1)
        else:
            self.maybe_resize()

    # ------------------------------------------------------------------ #
    # Durable snapshots (see repro.persist)
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> str:
        """Write a versioned snapshot of this table to ``path``.

        Convenience hook for :func:`repro.persist.save`; the snapshot is
        host-side work (no device events) and restores bit-identically —
        items, chain structure, allocator occupancy and device counters.
        """
        from repro.persist.snapshot import save as _save

        return _save(self, path)

    @classmethod
    def load(cls, path: str) -> "SlabHash":
        """Restore a table from a snapshot written by :meth:`save`."""
        from repro.persist.snapshot import load as _load

        table = _load(path)
        if not isinstance(table, cls):
            raise TypeError(f"{path} holds a {type(table).__name__}, not a {cls.__name__}")
        return table

    # ------------------------------------------------------------------ #
    # Maintenance and introspection
    # ------------------------------------------------------------------ #

    def flush(self, bucket: Optional[int] = None) -> List[FlushResult]:
        """Compact one bucket (or all buckets) and release empty slabs.

        ``bucket`` addresses the current (old) array; a full flush during an
        incremental migration compacts both live arrays.
        """
        warp = self._next_warp()
        if bucket is not None:
            self.device.launch_kernel()
            return [flush_bucket(self.lists, warp, bucket)]
        results = flush_all(self.lists, warp)
        if self.migration is not None:
            results += flush_all(self.migration.new_lists, self._next_warp())
        return results

    @property
    def num_buckets(self) -> int:
        """Bucket count of the current (old, during a migration) array."""
        return self.lists.num_lists

    def __len__(self) -> int:
        """Number of stored elements (host-side scan, not performance-counted).

        During an incremental migration this spans both live arrays.
        """
        count = self.lists.live_item_count()
        if self.migration is not None:
            count += self.migration.new_lists.live_item_count()
        return count

    def beta(self) -> float:
        """Average slab count ``beta = n / (M * B)`` for the current contents."""
        return len(self) / (self.config.elements_per_slab * self.num_buckets)

    def total_slabs(self) -> int:
        """Base slabs plus allocated slabs currently used by the table.

        Spans both live arrays during an incremental migration.
        """
        total = self.lists.total_slabs()
        if self.migration is not None:
            total += self.migration.new_lists.total_slabs()
        return total

    def used_bytes(self) -> int:
        """Total memory occupied by the table (all slabs, 128 bytes each)."""
        return self.total_slabs() * C.SLAB_BYTES

    def memory_utilization(self) -> float:
        """Stored data bytes over total used memory (the paper's utilization metric)."""
        stored = len(self) * self.config.element_bytes
        return stored / self.used_bytes()

    def bucket_slab_counts(self) -> np.ndarray:
        """Per-bucket slab counts of the current (old) array."""
        return self.lists.slab_counts()

    def items(self) -> List[Tuple[int, Optional[int]]]:
        """All stored (key, value) pairs (value ``None`` in key-only mode).

        During an incremental migration, old-array items first (buckets at
        or above the watermark), then new-array items.
        """
        items = self.lists.all_live_items()
        if self.migration is not None:
            items += self.migration.new_lists.all_live_items()
        return items

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "key-value" if self.config.key_value else "key-only"
        return (
            f"SlabHash(buckets={self.num_buckets}, {mode}, "
            f"unique={self.config.unique_keys}, elements={len(self)})"
        )
