"""Slab layout constants, reserved key values and instruction-cost charges.

Slab layout (Section IV-B of the paper)
---------------------------------------
A slab is exactly 128 bytes = 32 lanes of 32-bit words, so that a warp reading
a slab gives each thread exactly 1/32 of its content:

* lanes 0–29 hold data elements.  In key-value mode even lanes hold keys and
  the following odd lanes hold the corresponding values (15 pairs per slab);
  in key-only mode every lane 0–29 holds a key (30 keys per slab).
* lane 30 is the auxiliary lane (flags / pointer information if required).
* lane 31 is the address lane: the 32-bit SlabAlloc address of the successor
  slab, or ``EMPTY_POINTER`` at the tail.

Two 32-bit values are reserved in the key domain (Section III-B, footnote):
``EMPTY_KEY`` marks a never-used element slot and ``DELETED_KEY`` marks a
lazily deleted element, so user keys must be smaller than ``MAX_USER_KEY``.

Instruction-cost charges
------------------------
The ``*_ITER_INSTRUCTIONS`` constants are the generic warp-wide instruction
counts charged per loop iteration of each warp-cooperative procedure, on top
of the explicitly counted ballots/shuffles/atomics.  They stand in for the
address arithmetic, predicate evaluation and branch handling of the real CUDA
kernels and are part of the cost-model calibration documented in
:mod:`repro.gpusim.costmodel`.
"""

from __future__ import annotations

from repro.gpusim.intrinsics import lane_mask

# --------------------------------------------------------------------------- #
# Slab geometry
# --------------------------------------------------------------------------- #

#: Number of 32-bit words per slab (128 bytes, one coalesced warp transaction).
SLAB_WORDS = 32

#: Bytes per slab.
SLAB_BYTES = 4 * SLAB_WORDS

#: Lane holding the 32-bit address of the successor slab.
ADDRESS_LANE = 31

#: Auxiliary lane reserved for flags / extra pointer information.
AUX_LANE = 30

#: Number of lanes available for data elements (lanes 0..29).
DATA_LANES = 30

#: Key-value pairs stored per slab (even/odd lane pairs in lanes 0..29).
PAIRS_PER_SLAB = DATA_LANES // 2

#: Keys stored per slab in key-only mode.
KEYS_PER_SLAB = DATA_LANES

#: Ballot mask of lanes that can hold a key in key-value mode (even lanes 0..28).
VALID_KEY_MASK_KEY_VALUE = lane_mask(range(0, DATA_LANES, 2))

#: Ballot mask of lanes that can hold a key in key-only mode (lanes 0..29).
VALID_KEY_MASK_KEY_ONLY = lane_mask(range(DATA_LANES))

# --------------------------------------------------------------------------- #
# Reserved values
# --------------------------------------------------------------------------- #

#: Reserved key marking an empty (never used) element slot.
EMPTY_KEY = 0xFFFFFFFF

#: Reserved key marking a lazily deleted element.
DELETED_KEY = 0xFFFFFFFE

#: Largest key a user may store (exclusive bound keeps the reserved values free).
MAX_USER_KEY = 0xFFFFFFFD

#: Reserved value stored in a value lane of an empty pair.
EMPTY_VALUE = 0xFFFFFFFF

#: The empty key-value pair, the expected operand of the insertion CAS.
EMPTY_PAIR = (EMPTY_KEY, EMPTY_VALUE)

#: Null successor pointer (tail of a slab list).
EMPTY_POINTER = 0xFFFFFFFF

#: Sentinel "slab pointer" meaning "the bucket's base slab" while traversing.
BASE_SLAB = 0xFFFFFFFD

#: Sentinel returned by SEARCH when the query key is not present.
SEARCH_NOT_FOUND = 0xFFFFFFFF

# --------------------------------------------------------------------------- #
# Operation codes for mixed concurrent batches (Section VI-C benchmark)
# --------------------------------------------------------------------------- #

OP_INSERT = 1
OP_DELETE = 2
OP_SEARCH = 3

# --------------------------------------------------------------------------- #
# Instruction-cost charges (cost-model calibration; see module docstring)
# --------------------------------------------------------------------------- #

#: Warp instructions charged per SEARCH loop iteration.
SEARCH_ITER_INSTRUCTIONS = 36

#: Warp instructions charged per REPLACE/INSERT loop iteration.
REPLACE_ITER_INSTRUCTIONS = 44

#: Warp instructions charged per DELETE loop iteration.
DELETE_ITER_INSTRUCTIONS = 34

#: Warp instructions charged to hash one key (universal hash, two multiplies).
HASH_INSTRUCTIONS = 5

#: Warp instructions charged per SlabAlloc allocation attempt.
ALLOC_ATTEMPT_INSTRUCTIONS = 14

#: Warp instructions charged per SlabAlloc deallocation.
DEALLOC_INSTRUCTIONS = 8

#: Warp instructions charged per FLUSH slab compaction step.
FLUSH_SLAB_INSTRUCTIONS = 24
