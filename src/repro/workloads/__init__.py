"""Workload generation for the paper's benchmarks.

* :mod:`repro.workloads.generators` — random unique key sets, deterministic
  values, existing/missing query sets, batch splitting.
* :mod:`repro.workloads.distributions` — the operation distributions
  Gamma = (a, b, c, d) of the concurrent benchmark (Section VI-C) and the
  construction of mixed operation batches from them.
* :mod:`repro.workloads.churn` — sustained insert/delete cycles that swing
  the population between a base and a peak, the driver for online resizing
  (the ``resize-sweep`` experiment and ``benchmarks/bench_resize.py``).
"""

from repro.workloads.generators import (
    unique_random_keys,
    values_for_keys,
    existing_queries,
    missing_queries,
    split_batches,
)
from repro.workloads.distributions import (
    OperationDistribution,
    GAMMA_UPDATES_ONLY,
    GAMMA_40_UPDATES,
    GAMMA_20_UPDATES,
    PAPER_DISTRIBUTIONS,
    ConcurrentWorkload,
    build_concurrent_workload,
)
from repro.workloads.churn import (
    ChurnStep,
    ChurnWorkload,
    apply_churn_step,
    build_churn_workload,
    run_churn,
)

__all__ = [
    "unique_random_keys",
    "values_for_keys",
    "existing_queries",
    "missing_queries",
    "split_batches",
    "OperationDistribution",
    "GAMMA_UPDATES_ONLY",
    "GAMMA_40_UPDATES",
    "GAMMA_20_UPDATES",
    "PAPER_DISTRIBUTIONS",
    "ConcurrentWorkload",
    "build_concurrent_workload",
    "ChurnStep",
    "ChurnWorkload",
    "apply_churn_step",
    "build_churn_workload",
    "run_churn",
]
