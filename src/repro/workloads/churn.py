"""Churn workloads: sustained insert/delete phases that stress table sizing.

The paper's benchmarks hold the element count (nearly) fixed; a *churn*
workload instead swings it between a base and a peak population, cycle after
cycle.  On a fixed-bucket table each cycle makes things worse twice over:
chains lengthen as the population climbs past the construction-time sizing,
and (in unique-keys mode) every delete phase leaves tombstones that all later
traversals keep paying for.  This is exactly the scenario online resizing
(:mod:`repro.core.resize`) exists for — each grow/shrink migration rebuilds
the chains at the target beta and drops accumulated tombstones — so the churn
workload is the canonical driver for the ``resize-sweep`` experiment and
``benchmarks/bench_resize.py``.

A :class:`ChurnWorkload` is a deterministic list of :class:`ChurnStep`
batches.  Each cycle inserts fresh keys up to the peak population in several
batches (the *grow* phase), then deletes back down to the base population
(the *shrink* phase), oldest keys first.  Run one against any table with
:func:`apply_churn_step` / :func:`run_churn`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Union

if TYPE_CHECKING:
    from repro.core.slab_hash import SlabHash
    from repro.engine.sharded import ShardedSlabHash

import numpy as np

from repro.workloads.generators import unique_random_keys, values_for_keys

__all__ = ["ChurnStep", "ChurnWorkload", "build_churn_workload", "apply_churn_step", "run_churn"]


@dataclass(frozen=True)
class ChurnStep:
    """One bulk batch of a churn workload."""

    kind: str  #: ``"insert"`` or ``"delete"``
    keys: np.ndarray
    values: Optional[np.ndarray]  #: ``None`` for deletions
    cycle: int  #: which insert/delete cycle this batch belongs to
    phase: str  #: ``"grow"`` (insert phase) or ``"shrink"`` (delete phase)

    def __len__(self) -> int:
        return len(self.keys)


@dataclass(frozen=True)
class ChurnWorkload:
    """A materialized churn schedule (deterministic from its seed)."""

    steps: List[ChurnStep]
    base_elements: int
    peak_elements: int
    cycles: int

    @property
    def num_ops(self) -> int:
        """Total operations across every step (inserts plus deletes)."""
        return sum(len(step) for step in self.steps)

    def cycle_steps(self, cycle: int) -> List[ChurnStep]:
        """The steps of one cycle, in execution order."""
        return [step for step in self.steps if step.cycle == cycle]

    def __len__(self) -> int:
        return len(self.steps)


def build_churn_workload(
    peak_elements: int,
    *,
    base_elements: Optional[int] = None,
    cycles: int = 3,
    batches_per_phase: int = 4,
    seed: int = 0,
) -> ChurnWorkload:
    """Materialize a churn schedule swinging between base and peak population.

    Every cycle inserts ``peak - current`` brand-new distinct keys (in
    ``batches_per_phase`` batches) and then deletes the oldest keys until
    only ``base_elements`` remain (again batched).  Keys are never reused
    across cycles, so a unique-keys table accumulates tombstones exactly the
    way a long-running churny deployment would.
    """
    if peak_elements <= 0:
        raise ValueError(f"peak_elements must be positive, got {peak_elements}")
    base_elements = peak_elements // 8 if base_elements is None else base_elements
    if not 0 <= base_elements < peak_elements:
        raise ValueError(
            f"base_elements must be in [0, peak_elements), got {base_elements} "
            f"with peak {peak_elements}"
        )
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    if batches_per_phase <= 0:
        raise ValueError(f"batches_per_phase must be positive, got {batches_per_phase}")

    # One disjoint pool of fresh keys for every cycle's insert phase.
    total_fresh = peak_elements + (cycles - 1) * (peak_elements - base_elements)
    pool = unique_random_keys(total_fresh, seed=seed)
    pool_next = 0

    steps: List[ChurnStep] = []
    live: List[np.ndarray] = []  # insertion-ordered batches still (partly) alive
    live_count = 0
    for cycle in range(cycles):
        fresh = peak_elements - live_count
        new_keys = pool[pool_next : pool_next + fresh]
        pool_next += fresh
        for chunk in np.array_split(new_keys, batches_per_phase):
            if not chunk.size:
                continue
            steps.append(
                ChurnStep(
                    kind="insert",
                    keys=chunk.copy(),
                    values=values_for_keys(chunk),
                    cycle=cycle,
                    phase="grow",
                )
            )
        live.append(new_keys)
        live_count = peak_elements

        doomed_total = live_count - base_elements
        doomed = np.concatenate(live)[:doomed_total]
        for chunk in np.array_split(doomed, batches_per_phase):
            if not chunk.size:
                continue
            steps.append(
                ChurnStep(kind="delete", keys=chunk.copy(), values=None, cycle=cycle, phase="shrink")
            )
        survivors = np.concatenate(live)[doomed_total:]
        live = [survivors]
        live_count = base_elements

    return ChurnWorkload(
        steps=steps,
        base_elements=base_elements,
        peak_elements=peak_elements,
        cycles=cycles,
    )


def apply_churn_step(table: "Union[SlabHash, ShardedSlabHash]", step: ChurnStep) -> None:
    """Run one churn batch against a table (SlabHash or ShardedSlabHash)."""
    if step.kind == "insert":
        values = step.values
        # Key-only tables take no values; sharded engines expose config via shards.
        config = table.shards[0].config if hasattr(table, "shards") else table.config
        table.bulk_insert(step.keys, values if config.key_value else None)
    elif step.kind == "delete":
        table.bulk_delete(step.keys)
    else:  # pragma: no cover - ChurnWorkload only builds the two kinds
        raise ValueError(f"unknown churn step kind {step.kind!r}")


def run_churn(table: "Union[SlabHash, ShardedSlabHash]", workload: ChurnWorkload) -> int:
    """Apply every step of a churn workload in order; returns total operations."""
    for step in workload.steps:
        apply_churn_step(table, step)
    return workload.num_ops
