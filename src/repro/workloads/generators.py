"""Random key/value/query generation for the bulk and incremental benchmarks.

The paper's experiments use uniformly random 32-bit keys; search workloads are
either "all queries exist" or "none of the queries exist" (the best and worst
cases for a hash table, Section VI-A).  The generators here reproduce those
workloads deterministically from a seed.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.core import constants as C

__all__ = [
    "unique_random_keys",
    "values_for_keys",
    "existing_queries",
    "missing_queries",
    "zipf_queries",
    "split_batches",
]

#: Keys are drawn below this bound; the disjoint range above it (up to
#: MAX_USER_KEY) is reserved for guaranteed-missing queries.
_EXISTING_KEY_BOUND = 0x7FFFFFFF


def unique_random_keys(count: int, seed: int = 0, *, high: int = _EXISTING_KEY_BOUND) -> np.ndarray:
    """Draw ``count`` distinct uniformly random user keys in ``[1, high)``."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if count >= high:
        raise ValueError(f"cannot draw {count} distinct keys below {high}")
    rng = np.random.default_rng(seed)
    keys = np.empty(0, dtype=np.uint32)
    while keys.size < count:
        needed = count - keys.size
        draw = rng.integers(1, high, size=int(needed * 1.3) + 16, dtype=np.uint64)
        keys = np.unique(np.concatenate([keys, draw.astype(np.uint32)]))
    rng.shuffle(keys)
    return keys[:count].copy()


def values_for_keys(keys: np.ndarray) -> np.ndarray:
    """Deterministic value for each key (a cheap mix), convenient for verification."""
    keys64 = np.asarray(keys, dtype=np.uint64)
    mixed = (keys64 * np.uint64(2_654_435_761) + np.uint64(12345)) & np.uint64(0xFFFFFFFE)
    return mixed.astype(np.uint32)


def existing_queries(keys: np.ndarray, count: int, seed: int = 1) -> np.ndarray:
    """Queries drawn (with replacement) from the stored key set: the all-found workload."""
    rng = np.random.default_rng(seed)
    keys = np.asarray(keys)
    return keys[rng.integers(0, len(keys), size=count)].astype(np.uint32)


def missing_queries(count: int, seed: int = 2) -> np.ndarray:
    """Queries guaranteed absent from any key set built by :func:`unique_random_keys`."""
    rng = np.random.default_rng(seed)
    low, high = _EXISTING_KEY_BOUND + 1, C.MAX_USER_KEY
    return rng.integers(low, high, size=count, dtype=np.uint64).astype(np.uint32)


def zipf_queries(keys: np.ndarray, count: int, *, skew: float = 1.1, seed: int = 3) -> np.ndarray:
    """Skewed (Zipf-distributed) queries over the stored key set.

    The paper evaluates uniform workloads; real query streams are often
    heavily skewed, which concentrates traffic on a few buckets and stresses
    the warp-cooperative search path differently (the same hot slab is read by
    many warps).  ``skew`` is the Zipf exponent (must be > 1); larger values
    concentrate more of the queries on the most popular keys.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if skew <= 1.0:
        raise ValueError(f"the Zipf exponent must be > 1, got {skew}")
    keys = np.asarray(keys)
    if keys.size == 0:
        raise ValueError("zipf_queries needs a non-empty key set")
    rng = np.random.default_rng(seed)
    ranks = rng.zipf(skew, size=count)
    return keys[(ranks - 1) % keys.size].astype(np.uint32)


def split_batches(keys: np.ndarray, batch_size: int) -> List[np.ndarray]:
    """Split a key array into consecutive batches (the incremental-insertion workload)."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    keys = np.asarray(keys)
    return [keys[i : i + batch_size] for i in range(0, len(keys), batch_size)]
