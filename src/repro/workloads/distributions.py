"""Operation distributions for the concurrent benchmark (Section VI-C).

The paper defines a distribution ``Gamma = (a, b, c, d)`` over four operation
categories — (a) inserting a new element, (b) deleting a previously inserted
element, (c) searching for an existing element, (d) searching for a
non-existing element — and evaluates three of them:

* ``Gamma_0 = (0.5, 0.5, 0, 0)``  — 100 % updates,
* ``Gamma_1 = (0.2, 0.2, 0.3, 0.3)`` — 40 % updates, 60 % searches,
* ``Gamma_2 = (0.1, 0.1, 0.4, 0.4)`` — 20 % updates, 80 % searches.

Operations are generated in batches, one operation per thread, so that all
four categories can occur within a single warp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core import constants as C
from repro.workloads.generators import missing_queries, unique_random_keys, values_for_keys

__all__ = [
    "OperationDistribution",
    "GAMMA_UPDATES_ONLY",
    "GAMMA_40_UPDATES",
    "GAMMA_20_UPDATES",
    "PAPER_DISTRIBUTIONS",
    "ConcurrentWorkload",
    "build_concurrent_workload",
]


@dataclass(frozen=True)
class OperationDistribution:
    """The paper's Gamma = (a, b, c, d) operation mix."""

    insert_new: float
    delete_existing: float
    search_existing: float
    search_missing: float
    label: str = ""

    def __post_init__(self) -> None:
        parts = (self.insert_new, self.delete_existing, self.search_existing, self.search_missing)
        if any(p < 0 for p in parts):
            raise ValueError(f"operation fractions must be non-negative: {parts}")
        if abs(sum(parts) - 1.0) > 1e-9:
            raise ValueError(f"operation fractions must sum to 1, got {sum(parts)}")

    @property
    def update_fraction(self) -> float:
        """Fraction of operations that mutate the table (a + b)."""
        return self.insert_new + self.delete_existing

    def describe(self) -> str:
        return self.label or (
            f"{int(round(self.update_fraction * 100))}% updates, "
            f"{int(round((1 - self.update_fraction) * 100))}% searches"
        )


#: Gamma_0: all operations are updates.
GAMMA_UPDATES_ONLY = OperationDistribution(0.5, 0.5, 0.0, 0.0, label="100% updates, 0% searches")
#: Gamma_1: 40 % updates, 60 % searches.
GAMMA_40_UPDATES = OperationDistribution(0.2, 0.2, 0.3, 0.3, label="40% updates, 60% searches")
#: Gamma_2: 20 % updates, 80 % searches.
GAMMA_20_UPDATES = OperationDistribution(0.1, 0.1, 0.4, 0.4, label="20% updates, 80% searches")

#: The three distributions evaluated in Figures 7a and 7b.
PAPER_DISTRIBUTIONS: Tuple[OperationDistribution, ...] = (
    GAMMA_20_UPDATES,
    GAMMA_40_UPDATES,
    GAMMA_UPDATES_ONLY,
)


@dataclass(frozen=True)
class ConcurrentWorkload:
    """A fully materialized mixed-operation batch."""

    op_codes: np.ndarray
    keys: np.ndarray
    values: np.ndarray
    distribution: OperationDistribution

    def __len__(self) -> int:
        return len(self.op_codes)


def build_concurrent_workload(
    distribution: OperationDistribution,
    num_operations: int,
    existing_keys: np.ndarray,
    *,
    seed: int = 0,
) -> ConcurrentWorkload:
    """Materialize a random mixed batch following ``distribution``.

    * insertions use brand-new keys (disjoint from ``existing_keys``),
    * deletions target previously inserted keys (sampled without replacement
      while supplies last),
    * existing searches sample ``existing_keys`` with replacement,
    * missing searches use keys from the guaranteed-absent range.

    Operations are shuffled so all categories mix within warps, exactly as in
    the paper's benchmark.
    """
    if num_operations <= 0:
        raise ValueError(f"num_operations must be positive, got {num_operations}")
    existing_keys = np.asarray(existing_keys, dtype=np.uint32)
    if existing_keys.size == 0:
        raise ValueError("the concurrent workload needs a non-empty initial key set")
    rng = np.random.default_rng(seed)

    categories = rng.choice(
        4,
        size=num_operations,
        p=[
            distribution.insert_new,
            distribution.delete_existing,
            distribution.search_existing,
            distribution.search_missing,
        ],
    )
    op_codes = np.empty(num_operations, dtype=np.int64)
    keys = np.empty(num_operations, dtype=np.uint32)

    n_insert = int(np.sum(categories == 0))
    n_delete = int(np.sum(categories == 1))
    n_search_hit = int(np.sum(categories == 2))
    n_search_miss = int(np.sum(categories == 3))

    new_keys = unique_random_keys(max(1, n_insert), seed=seed + 101)
    # Make sure the "new" keys really are new.
    new_keys = np.setdiff1d(new_keys, existing_keys, assume_unique=False)
    while new_keys.size < n_insert:
        extra = unique_random_keys(n_insert - new_keys.size + 16, seed=seed + 211 + new_keys.size)
        new_keys = np.setdiff1d(np.concatenate([new_keys, extra]), existing_keys)
    new_keys = new_keys[:n_insert]

    delete_pool = rng.permutation(existing_keys)
    delete_keys = delete_pool[:n_delete]
    if n_delete > delete_pool.size:
        # More deletions than distinct existing keys: reuse (later ones miss).
        repeats = rng.integers(0, delete_pool.size, size=n_delete - delete_pool.size)
        delete_keys = np.concatenate([delete_keys, delete_pool[repeats]])

    hit_keys = existing_keys[rng.integers(0, existing_keys.size, size=max(1, n_search_hit))][
        :n_search_hit
    ]
    miss_keys = missing_queries(max(1, n_search_miss), seed=seed + 7)[:n_search_miss]

    op_codes[categories == 0] = C.OP_INSERT
    op_codes[categories == 1] = C.OP_DELETE
    op_codes[categories == 2] = C.OP_SEARCH
    op_codes[categories == 3] = C.OP_SEARCH
    keys[categories == 0] = new_keys
    keys[categories == 1] = delete_keys
    keys[categories == 2] = hit_keys
    keys[categories == 3] = miss_keys

    values = values_for_keys(keys)
    return ConcurrentWorkload(
        op_codes=op_codes, keys=keys, values=values, distribution=distribution
    )


def split_into_warp_batches(workload: ConcurrentWorkload, batch_size: int) -> List[ConcurrentWorkload]:
    """Split a workload into batches processed one at a time (but each in parallel)."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    out: List[ConcurrentWorkload] = []
    for start in range(0, len(workload), batch_size):
        end = min(start + batch_size, len(workload))
        out.append(
            ConcurrentWorkload(
                op_codes=workload.op_codes[start:end],
                keys=workload.keys[start:end],
                values=workload.values[start:end],
                distribution=workload.distribution,
            )
        )
    return out
