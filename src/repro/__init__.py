"""Python reproduction of "A Dynamic Hash Table for the GPU" (SlabHash, IPDPS 2018).

Packages
--------
* :mod:`repro.gpusim` — warp-level GPU SIMT simulator substrate (device model,
  global memory with atomics and accounting, warp intrinsics, interleaving
  scheduler, analytical cost model).
* :mod:`repro.core` — the paper's contribution: slab list, slab hash,
  SlabAlloc / SlabAlloc-light — plus online resizing with adaptive
  load-factor management (:mod:`repro.core.resize`).
* :mod:`repro.baselines` — hash-table baselines used by the evaluation
  (CUDPP-style cuckoo hashing, Misra & Chaudhuri's lock-free chaining table,
  the GFSL analytic model).
* :mod:`repro.allocators` — allocator baselines (CUDA-malloc-like, Halloc-like).
* :mod:`repro.workloads` — key/query generators and operation distributions.
* :mod:`repro.perf` — experiment harness, per-figure drivers and reporting.
* :mod:`repro.engine` — sharded multi-table engine: key-space routing across
  N independent slab-hash shards, each on its own simulated device.
* :mod:`repro.service` — async request-service layer: an operation-log
  micro-batcher that coalesces awaited single operations into warp-aligned
  concurrent batches and reports latency/throughput percentiles.
* :mod:`repro.persist` — durability: versioned snapshots that restore a
  live table bit-identically, the write-ahead log behind the service
  layer, and ``recover(snapshot, wal)`` crash recovery.

Quick start
-----------
>>> from repro import SlabHash
>>> table = SlabHash(num_buckets=128)
>>> table.insert(42, 1000)
>>> table.search(42)
1000
>>> table.delete(42)
True
"""

from repro.core.resize import LoadFactorPolicy, ResizeResult, ResizeStats
from repro.core.slab_hash import SlabHash
from repro.core.slab_alloc import SlabAlloc
from repro.core.slab_alloc_light import SlabAllocLight
from repro.core.slab_list import SlabListCollection
from repro.core.slab_list_single import SlabList
from repro.core.slab_set import SlabSet
from repro.core.config import SlabAllocConfig, SlabConfig
from repro.engine import EngineStats, ShardedSlabHash, ShardRouter
from repro.gpusim.device import Device, DeviceSpec, TESLA_K40C
from repro.persist import WriteAheadLog
from repro.service import ServiceConfig, ServiceStats, SlabHashService

__version__ = "1.3.0"

__all__ = [
    "SlabHash",
    "LoadFactorPolicy",
    "ResizeResult",
    "ResizeStats",
    "ShardedSlabHash",
    "ShardRouter",
    "EngineStats",
    "SlabHashService",
    "ServiceConfig",
    "ServiceStats",
    "WriteAheadLog",
    "SlabList",
    "SlabSet",
    "SlabAlloc",
    "SlabAllocLight",
    "SlabListCollection",
    "SlabAllocConfig",
    "SlabConfig",
    "Device",
    "DeviceSpec",
    "TESLA_K40C",
    "__version__",
]
