"""Deterministic, seeded fault injection for the slab-hash stack.

A :class:`FaultPlan` is a schedule of :class:`FaultAction` entries addressed
by **site name + occurrence index** — "the 3rd time the WAL writes, tear the
write after 10 bytes", "the 1st batch shard 2 executes, fail it".  There is
no wall-clock and no global randomness anywhere: the same plan against the
same program produces the same faults at the same points, which is what
makes the chaos proptests (``tests/proptest/test_chaos_service.py``)
shrinkable and replayable from a seed.

Instrumented components hold an optional ``faults`` attribute (``None`` by
default — the hooks are a dict lookup when armed and a single ``is None``
test when not) and consult it at named sites:

=============================  ==================================================
site                           fired by
=============================  ==================================================
``shard:<i>.alloc.warp_allocate``  :meth:`repro.core.slab_alloc.SlabAlloc.warp_allocate`
                               (via the service's per-shard scoped view;
                               fires mid-migration-step too — the step's
                               inserts allocate through the same hook, so
                               allocator exhaustion inside a step is the
                               same site)
``shard:<i>.migration.step``   :func:`repro.core.resize.migrate_step`, before
                               the step moves any bucket (the step fails
                               whole: watermark unchanged, both tables
                               consistent, migration resumable)
``wal.append``                 :meth:`~repro.persist.wal.WriteAheadLog.append_group`,
                               before any byte is written
``wal.write``                  same, at the write itself (supports
                               ``torn_write`` — n bytes land, then the error)
``wal.fsync``                  same, after the write/flush, before fsync
``shard:<i>.execute``          the service drain, before a staged batch runs
``service.restore``            the quarantine-restore task, before ``recover()``
``shard:<i>.worker``           :class:`repro.engine.parallel.ProcessShardExecutor`,
                               before a command for shard ``i`` is dispatched
                               to its worker process (the worker is killed
                               and the dispatch fails with
                               :class:`WorkerCrashed`)
=============================  ==================================================

See ``docs/FAULTS.md`` for the degradation semantics behind each site.

Occurrence indices are per-site and tracked by a :class:`FaultClock`; a
:meth:`FaultPlan.scoped` view prefixes site names so one plan can address
per-shard instances ("shard:0." + "alloc.warp_allocate") while sharing a
single clock and fired-log.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.gpusim.errors import SlabAllocExhausted

__all__ = [
    "FaultAction",
    "FaultClock",
    "FaultPlan",
    "FaultSite",
    "InjectedFault",
    "InjectedAllocExhausted",
    "InjectedBatchFailure",
    "InjectedMigrationFailure",
    "InjectedWalError",
    "SITE_CATALOG",
    "WorkerCrashed",
]


@dataclass(frozen=True)
class FaultSite:
    """One entry of the machine-readable fault-site catalog.

    ``name`` is the canonical plan-addressable site (``<i>`` stands for a
    shard index); ``call_site`` is the literal the firing component passes
    to ``check``/``fire`` — they differ only for sites reached through a
    ``scoped("shard:<i>.")`` view.  ``dirty`` records whether shard state
    may have partially applied when the fault fires (the degradation
    semantics table in ``docs/FAULTS.md`` mirrors this flag).
    """

    name: str
    call_site: str
    component: str
    dirty: bool
    description: str


#: The single source of truth for fault-site names.  The ``fault-site``
#: lint rule checks every ``check``/``fire`` literal in ``src/`` against
#: this catalog, and ``tests/faults/test_site_catalog.py`` checks that the
#: catalog, the call sites, and ``docs/FAULTS.md`` agree.
SITE_CATALOG: Tuple[FaultSite, ...] = (
    FaultSite(
        name="shard:<i>.alloc.warp_allocate",
        call_site="alloc.warp_allocate",
        component="allocator",
        dirty=True,
        description="shard i's allocator grabs a slab inside a running batch",
    ),
    FaultSite(
        name="shard:<i>.migration.step",
        call_site="migration.step",
        component="incremental resize",
        dirty=False,
        description="before a migration step moves any bucket (step fails whole)",
    ),
    FaultSite(
        name="shard:<i>.execute",
        call_site="shard:<i>.execute",
        component="drain loop",
        dirty=False,
        description="before shard i's staged batch runs (post-WAL-commit)",
    ),
    FaultSite(
        name="shard:<i>.worker",
        call_site="shard:<i>.worker",
        component="process executor",
        dirty=True,
        description="on each dispatch to shard i's resident worker process",
    ),
    FaultSite(
        name="wal.append",
        call_site="wal.append",
        component="WAL",
        dirty=False,
        description="before any byte of a group append is written",
    ),
    FaultSite(
        name="wal.write",
        call_site="wal.write",
        component="WAL",
        dirty=False,
        description="at the group append's write (supports torn_write)",
    ),
    FaultSite(
        name="wal.fsync",
        call_site="wal.fsync",
        component="WAL",
        dirty=False,
        description="after the write/flush, before fsync",
    ),
    FaultSite(
        name="service.restore",
        call_site="service.restore",
        component="quarantine restore",
        dirty=False,
        description="at each restore attempt of a quarantined shard",
    ),
)


class InjectedFault(Exception):
    """Marker base: an error that exists only because a FaultPlan said so.

    The service uses this distinction for durability: a *natural* batch
    failure is deterministic and replays identically from the WAL, but an
    injected one would not recur on replay, so the service writes an abort
    marker before failing the batch's futures (see ``docs/FAULTS.md``).
    """


class InjectedAllocExhausted(InjectedFault, SlabAllocExhausted):
    """Injected allocator exhaustion (``alloc.warp_allocate`` site)."""


class InjectedBatchFailure(InjectedFault):
    """Injected batch-execution failure (``shard:<i>.execute`` site)."""


class InjectedMigrationFailure(InjectedFault):
    """Injected migration-step failure (``shard:<i>.migration.step`` site).

    Fired before the step moves any bucket, so the failed step leaves the
    watermark unchanged and both tables consistent; the migration resumes
    on the next pump.
    """


class InjectedWalError(InjectedFault, OSError):
    """Injected WAL I/O error (``wal.append`` / ``wal.write`` / ``wal.fsync``)."""


class WorkerCrashed(InjectedFault, ConnectionError):
    """A shard's worker process died mid-dispatch (``shard:<i>.worker`` site).

    Raised by :class:`repro.engine.parallel.ProcessShardExecutor` both for
    an injected kill and for a genuine worker death (segfault, OOM kill):
    either way the worker-resident shard state is lost and the batch may
    have partially applied, so — like every injected failure — a crash is
    non-deterministic and non-replayable.  Subclassing :class:`InjectedFault`
    routes both cases through the service's abort-marker + immediate-trip
    path: the batch gets a durable WAL abort marker and the lane
    quarantines, and the restore rebuilds the shard from the last
    checkpoint plus the WAL tail and re-ships it to a fresh worker.
    """


#: Exception class per ``FaultAction.exc`` key.
_EXCEPTIONS = {
    "alloc": InjectedAllocExhausted,
    "batch": InjectedBatchFailure,
    "migration": InjectedMigrationFailure,
    "os": InjectedWalError,
    "worker": WorkerCrashed,
    "fault": InjectedFault,
}


@dataclass(frozen=True)
class FaultAction:
    """What happens when a scheduled (site, occurrence) is reached.

    ``kind``:

    * ``"raise"`` — raise the exception named by ``exc`` (a key of the
      injected-exception registry: ``alloc`` / ``batch`` / ``os`` /
      ``fault``).
    * ``"sleep"`` — block for ``seconds`` (a slow batch / slow I/O); the
      site then proceeds normally.
    * ``"torn_write"`` — WAL ``wal.write`` site only: ``bytes_written``
      bytes of the frame group land on disk, then an injected ``OSError``
      is raised (the torn-tail + rollback paths both get exercised).
    """

    kind: str = "raise"
    exc: str = "fault"
    seconds: float = 0.0
    bytes_written: int = 0
    note: str = ""

    def exception(self) -> InjectedFault:
        """Build the injected exception this action raises."""
        cls = _EXCEPTIONS.get(self.exc, InjectedFault)
        detail = f" ({self.note})" if self.note else ""
        return cls(f"injected {self.exc} fault{detail}")


class FaultClock:
    """Per-site occurrence counters (the 'time base' of a plan).

    Monotonic per site, advanced by every :meth:`FaultPlan.fire` — whether
    or not a fault was scheduled there — so "occurrence 3 of ``wal.write``"
    means the same thing in every run of the same program.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def tick(self, site: str) -> int:
        """Advance ``site`` and return the occurrence index just consumed."""
        occurrence = self._counts.get(site, 0)
        self._counts[site] = occurrence + 1
        return occurrence

    def count(self, site: str) -> int:
        """Occurrences of ``site`` seen so far."""
        return self._counts.get(site, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)


@dataclass
class _Fired:
    """One fault that actually fired (for assertions and postmortems)."""

    site: str
    occurrence: int
    action: FaultAction


class FaultPlan:
    """A deterministic schedule of faults: ``(site, occurrence) -> action``.

    Build one explicitly::

        plan = FaultPlan({
            ("wal.write", 1): FaultAction(kind="torn_write", bytes_written=7),
            ("shard:0.execute", 2): FaultAction(exc="batch"),
        })

    or draw one from a seed with :meth:`random`.  Components call
    :meth:`check` (interpret raise/sleep inline) or :meth:`fire` (get the
    action back to interpret locally, e.g. torn writes).  Every fired fault
    is recorded in :attr:`fired`.
    """

    def __init__(
        self, schedule: Optional[Mapping[Tuple[str, int], FaultAction]] = None
    ) -> None:
        self.schedule: Dict[Tuple[str, int], FaultAction] = dict(schedule or {})
        self.clock = FaultClock()
        self.fired: List[_Fired] = []

    # ------------------------------------------------------------------ #
    # The two hook entry points
    # ------------------------------------------------------------------ #

    def fire(self, site: str) -> Optional[FaultAction]:
        """Advance ``site``'s clock; return the scheduled action, if any.

        The caller interprets the action (used by sites with local
        semantics, like the WAL's torn write).  ``None`` means proceed.
        """
        occurrence = self.clock.tick(site)
        action = self.schedule.get((site, occurrence))
        if action is not None:
            self.fired.append(_Fired(site, occurrence, action))
        return action

    def check(self, site: str) -> Optional[FaultAction]:
        """Advance ``site``'s clock and interpret raise/sleep actions inline.

        Raises the injected exception for ``"raise"`` actions, sleeps for
        ``"sleep"`` actions (then returns the action), and returns any other
        action uninterpreted.
        """
        action = self.fire(site)
        if action is None:
            return None
        if action.kind == "raise":
            raise action.exception()
        if action.kind == "sleep":
            time.sleep(action.seconds)
        return action

    def exception(self, action: FaultAction) -> InjectedFault:
        """The exception an action raises (for caller-interpreted kinds)."""
        return action.exception()

    # ------------------------------------------------------------------ #
    # Views and constructors
    # ------------------------------------------------------------------ #

    def scoped(self, prefix: str) -> "ScopedFaults":
        """A view that prefixes every site name (shared clock + fired log).

        The service hands ``plan.scoped("shard:2.")`` to shard 2's
        allocator, whose local ``check("alloc.warp_allocate")`` then
        addresses the plan site ``"shard:2.alloc.warp_allocate"``.
        """
        return ScopedFaults(self, prefix)

    @classmethod
    def random(
        cls,
        seed: int,
        sites: Sequence[Tuple[str, FaultAction]],
        *,
        rate: float = 0.05,
        horizon: int = 64,
    ) -> "FaultPlan":
        """Draw a plan from a seed: each (site, template) pair fires with
        probability ``rate`` at each of the first ``horizon`` occurrences.

        Deterministic given ``(seed, sites, rate, horizon)`` — the chaos
        proptests derive ``sites`` from their own seed, so a failing seed
        fully reproduces the fault schedule.
        """
        rng = random.Random(seed)
        schedule: Dict[Tuple[str, int], FaultAction] = {}
        for site, template in sites:
            for occurrence in range(horizon):
                if rng.random() < rate:
                    schedule[(site, occurrence)] = template
        return cls(schedule)

    def fired_sites(self) -> List[Tuple[str, int]]:
        """``(site, occurrence)`` of every fault that fired, in fire order."""
        return [(f.site, f.occurrence) for f in self.fired]

    def __len__(self) -> int:
        return len(self.schedule)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(scheduled={len(self.schedule)}, fired={len(self.fired)})"


class ScopedFaults:
    """A site-name-prefixing view over a shared :class:`FaultPlan`."""

    __slots__ = ("plan", "prefix")

    def __init__(self, plan: FaultPlan, prefix: str) -> None:
        self.plan = plan
        self.prefix = str(prefix)

    def fire(self, site: str) -> Optional[FaultAction]:
        return self.plan.fire(self.prefix + site)

    def check(self, site: str) -> Optional[FaultAction]:
        return self.plan.check(self.prefix + site)

    def exception(self, action: FaultAction) -> InjectedFault:
        return self.plan.exception(action)

    def scoped(self, prefix: str) -> "ScopedFaults":
        return ScopedFaults(self.plan, self.prefix + prefix)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScopedFaults({self.prefix!r}, {self.plan!r})"
