"""Deterministic fault injection (see :mod:`repro.faults.plan`).

The robustness counterpart of the simulator's determinism: faults are
scheduled by **site name + occurrence index**, never by wall-clock or global
randomness, so every overload/quarantine/rollback behavior the service
exhibits under a plan is replayable from the plan alone.  ``docs/FAULTS.md``
catalogs the sites and the degradation semantics each one exercises.
"""

from repro.faults.plan import (
    FaultAction,
    FaultClock,
    FaultPlan,
    InjectedAllocExhausted,
    InjectedBatchFailure,
    InjectedFault,
    InjectedMigrationFailure,
    InjectedWalError,
    ScopedFaults,
    WorkerCrashed,
)

__all__ = [
    "FaultAction",
    "FaultClock",
    "FaultPlan",
    "InjectedAllocExhausted",
    "InjectedBatchFailure",
    "InjectedFault",
    "InjectedMigrationFailure",
    "InjectedWalError",
    "ScopedFaults",
    "WorkerCrashed",
]
