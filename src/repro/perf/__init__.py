"""Benchmark harness: measurement, per-figure drivers and reporting.

The drivers in :mod:`repro.perf.figures` regenerate every table and figure of
the paper's evaluation section (see DESIGN.md's per-experiment index).  They
follow a *simulate small, model at paper scale* methodology: the data
structures run with a scaled-down element count (so the pure-Python simulation
stays fast), the measured per-operation event counts are scaled up to the
paper's operation count, and the cost model evaluates the scaled counts with
the paper-scale working-set size (which determines L2 residency).  Per-op
event counts are load-factor/beta dependent but size independent, so this
preserves every trend the paper reports while keeping runtimes reasonable.
"""

from repro.perf.metrics import Measurement, measure_phase, scale_counters
from repro.perf.harness import Series, FigureResult, execution_backend
from repro.perf.latency import LatencyRecorder, LatencyReport
from repro.perf import figures
from repro.perf.report import format_figure, format_table

__all__ = [
    "Measurement",
    "measure_phase",
    "scale_counters",
    "Series",
    "FigureResult",
    "execution_backend",
    "LatencyRecorder",
    "LatencyReport",
    "figures",
    "format_figure",
    "format_table",
]
