"""Result containers shared by the per-figure drivers and the reports.

Also hosts :func:`execution_backend`, the harness-level switch between the
vectorized and reference bulk backends.  The two backends produce identical
device counters (the vectorized one synthesizes the reference schedule's
events exactly; see :mod:`repro.core.bulk_exec`), so every figure is
backend-independent — the switch only changes how long the *simulation*
takes on the host, which is what ``benchmarks/bench_wallclock.py`` measures.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.bulk_exec import get_default_backend, set_default_backend

__all__ = ["Series", "FigureResult", "execution_backend"]


@contextmanager
def execution_backend(name: str) -> Iterator[None]:
    """Temporarily set the process-wide default bulk-execution backend.

    Used by the CLI's ``--backend`` flag so every table an experiment driver
    constructs picks up the requested backend, without threading a parameter
    through every figure function.
    """
    previous = get_default_backend()
    set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(previous)


@dataclass
class Series:
    """One line of a figure: a label plus aligned x/y values."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def as_dict(self) -> Dict[float, float]:
        return dict(zip(self.x, self.y))

    def geometric_mean(self) -> float:
        """Geometric mean of the y values (the paper's summary statistic)."""
        if not self.y:
            raise ValueError(f"series {self.label!r} is empty")
        product = 1.0
        for value in self.y:
            if value <= 0:
                raise ValueError(f"geometric mean requires positive values, got {value}")
            product *= value
        return product ** (1.0 / len(self.y))


@dataclass
class FigureResult:
    """Everything needed to print (or compare against) one paper figure/table."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in {self.figure_id}")

    def add_series(self, label: str) -> Series:
        s = Series(label=label)
        self.series.append(s)
        return s

    def to_rows(self) -> Tuple[List[str], List[List[str]]]:
        """Tabular view: one row per x value, one column per series."""
        headers = [self.x_label] + [s.label for s in self.series]
        xs: List[float] = []
        for s in self.series:
            for x in s.x:
                if x not in xs:
                    xs.append(x)
        rows: List[List[str]] = []
        for x in xs:
            row = [f"{x:g}"]
            for s in self.series:
                lookup = s.as_dict()
                row.append(f"{lookup[x]:.4g}" if x in lookup else "-")
            rows.append(row)
        return headers, rows

    def speedup(self, numerator_label: str, denominator_label: str) -> Series:
        """Pointwise ratio between two series (used for the paper's speedup claims)."""
        num = self.series_by_label(numerator_label)
        den = self.series_by_label(denominator_label)
        ratio = Series(label=f"{numerator_label} / {denominator_label}")
        den_lookup = den.as_dict()
        for x, y in zip(num.x, num.y):
            if x in den_lookup and den_lookup[x] != 0:
                ratio.add(x, y / den_lookup[x])
        return ratio
