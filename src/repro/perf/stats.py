"""Load-balance and occupancy diagnostics for slab hash instances.

The paper's analysis assumes keys distribute uniformly over buckets (universal
hashing) and reasons about per-bucket slab counts through the average slab
count beta.  This module provides the measurement side of that reasoning:
per-bucket element/slab histograms, a chi-square uniformity check of the hash
function on the actually stored keys, and a comparison of the measured slab
histogram against the Poisson occupancy model behind
:meth:`repro.core.slab_hash.SlabHash.expected_utilization`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.slab_hash import SlabHash

__all__ = ["LoadBalanceReport", "analyze_load_balance", "expected_slab_histogram"]


@dataclass(frozen=True)
class LoadBalanceReport:
    """Summary of how evenly a slab hash's contents spread over its buckets."""

    num_buckets: int
    num_elements: int
    elements_per_bucket_mean: float
    elements_per_bucket_max: int
    elements_per_bucket_std: float
    slab_histogram: Dict[int, int]
    chi_square: float
    chi_square_dof: int
    chi_square_pvalue: float
    beta: float
    measured_utilization: float
    expected_utilization: float

    @property
    def is_balanced(self) -> bool:
        """True when the uniformity hypothesis is not rejected at the 1 % level."""
        return self.chi_square_pvalue > 0.01


def _chi_square_pvalue(statistic: float, dof: int) -> float:
    """Survival function of the chi-square distribution (regularized upper gamma)."""
    if dof <= 0:
        return 1.0
    try:
        from scipy.stats import chi2  # scipy is available in this environment

        return float(chi2.sf(statistic, dof))
    except ImportError:  # pragma: no cover - fallback approximation
        # Wilson-Hilferty normal approximation.
        z = ((statistic / dof) ** (1.0 / 3.0) - (1 - 2.0 / (9 * dof))) / math.sqrt(2.0 / (9 * dof))
        return 0.5 * math.erfc(z / math.sqrt(2.0))


def analyze_load_balance(table: SlabHash) -> LoadBalanceReport:
    """Measure the per-bucket load distribution of ``table``."""
    counts = np.array(
        [len(table.lists.live_items(bucket)) for bucket in range(table.num_buckets)],
        dtype=np.int64,
    )
    slabs = table.bucket_slab_counts()
    histogram: Dict[int, int] = {}
    for count in slabs:
        histogram[int(count)] = histogram.get(int(count), 0) + 1

    total = int(counts.sum())
    expected = total / table.num_buckets if table.num_buckets else 0.0
    if expected > 0:
        chi_square = float(((counts - expected) ** 2 / expected).sum())
    else:
        chi_square = 0.0
    dof = max(table.num_buckets - 1, 1)

    return LoadBalanceReport(
        num_buckets=table.num_buckets,
        num_elements=total,
        elements_per_bucket_mean=float(counts.mean()) if counts.size else 0.0,
        elements_per_bucket_max=int(counts.max()) if counts.size else 0,
        elements_per_bucket_std=float(counts.std()) if counts.size else 0.0,
        slab_histogram=histogram,
        chi_square=chi_square,
        chi_square_dof=dof,
        chi_square_pvalue=_chi_square_pvalue(chi_square, dof),
        beta=table.beta(),
        measured_utilization=table.memory_utilization(),
        expected_utilization=SlabHash.expected_utilization(
            table.beta(), key_value=table.config.key_value
        ),
    )


def expected_slab_histogram(num_elements: int, num_buckets: int, *, key_value: bool = True,
                            max_slabs: int = 24) -> List[float]:
    """Expected fraction of buckets using k slabs (k = 1..max_slabs), Poisson model.

    Useful for comparing a measured ``slab_histogram`` against the analytic
    occupancy model used to size tables (Fig. 4c).
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    per_slab = 15 if key_value else 30
    lam = num_elements / num_buckets
    fractions = [0.0] * max_slabs
    upper = int(lam + 10 * math.sqrt(max(lam, 1.0)) + 10)
    log_lam = math.log(lam) if lam > 0 else float("-inf")
    for k in range(upper + 1):
        if lam > 0:
            p = math.exp(k * log_lam - lam - math.lgamma(k + 1))
        else:
            p = 1.0 if k == 0 else 0.0
        slabs_needed = max(1, math.ceil(k / per_slab))
        if slabs_needed <= max_slabs:
            fractions[slabs_needed - 1] += p
    return fractions
