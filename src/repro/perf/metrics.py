"""Measurement helpers: wrap a phase, collect its events, convert to throughput."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.gpusim.costmodel import CostBreakdown, CostModel
from repro.gpusim.counters import Counters, scale_counters
from repro.gpusim.device import Device

__all__ = ["Measurement", "measure_phase", "scale_counters"]


@dataclass(frozen=True)
class Measurement:
    """One measured phase: its events, modelled time and throughput."""

    label: str
    num_ops: int
    counters: Counters
    breakdown: CostBreakdown
    seconds: float
    throughput: float

    @property
    def mops(self) -> float:
        """Throughput in the paper's M ops/s units."""
        return self.throughput / 1e6

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    def per_op(self, field: str) -> float:
        """Average number of a given counter event per operation."""
        return getattr(self.counters, field) / self.num_ops


def measure_phase(
    device: Device,
    fn: Callable[[], object],
    num_ops: int,
    *,
    label: str = "",
    cost_model: Optional[CostModel] = None,
    working_set_bytes: Optional[int] = None,
    scale_to_ops: Optional[int] = None,
    extra_serial_seconds: float = 0.0,
) -> Measurement:
    """Run ``fn``, collect the events it generates and convert them to throughput.

    Parameters
    ----------
    device:
        The device whose counters ``fn`` reports into.
    fn:
        The phase to execute (e.g. ``lambda: table.bulk_build(keys, values)``).
    num_ops:
        Number of logical operations performed by ``fn`` in the simulation.
    working_set_bytes:
        Randomly accessed working-set size used for the L2-residency decision
        (pass the *paper-scale* size when extrapolating).
    scale_to_ops:
        If given, the measured per-op event counts are scaled so that the
        reported throughput corresponds to running ``scale_to_ops`` operations
        (the paper-scale extrapolation described in :mod:`repro.perf`).
    extra_serial_seconds:
        Additional serialized time not captured by the roofline model (used by
        the allocator baselines); scaled together with the events.
    """
    model = cost_model or CostModel(device.spec)
    with device.phase() as events:
        fn()
    reported_ops = num_ops
    serial = extra_serial_seconds
    if scale_to_ops is not None and scale_to_ops != num_ops:
        factor = scale_to_ops / num_ops
        events = scale_counters(events, factor)
        serial = extra_serial_seconds * factor
        reported_ops = scale_to_ops
    breakdown = model.elapsed(events, working_set_bytes=working_set_bytes)
    seconds = breakdown.total_time + serial
    return Measurement(
        label=label,
        num_ops=reported_ops,
        counters=events,
        breakdown=breakdown,
        seconds=seconds,
        throughput=reported_ops / seconds if seconds > 0 else float("inf"),
    )
