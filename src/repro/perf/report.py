"""Plain-text rendering of figure results (the benchmark harness's output format)."""

from __future__ import annotations

from typing import List, Sequence

from repro.perf.harness import FigureResult

__all__ = ["format_table", "format_figure", "PAPER_REFERENCE"]


#: Headline numbers reported by the paper, used by EXPERIMENTS.md and by the
#: benchmark output so every run shows paper-vs-modelled side by side.
PAPER_REFERENCE = {
    "slabhash_peak_updates_mops": 512.0,
    "slabhash_peak_searches_mops": 937.0,
    "slaballoc_rate_mops": 600.0,
    "halloc_rate_mops": 16.1,
    "cuda_malloc_rate_mops": 0.8,
    "fig4_geomean_cuckoo_over_slab_build": 1.33,
    "fig4_geomean_cuckoo_over_slab_search_all": 2.08,
    "fig4_geomean_cuckoo_over_slab_search_none": 2.04,
    "fig5_geomean_cuckoo_over_slab_build": 1.19,
    "fig5_geomean_cuckoo_over_slab_search_all": 1.19,
    "fig5_geomean_cuckoo_over_slab_search_none": 0.94,
    "fig6_speedup_batch_32k": 17.3,
    "fig6_speedup_batch_64k": 10.4,
    "fig6_speedup_batch_128k": 6.4,
    "fig7b_speedup_100_updates": 5.1,
    "fig7b_speedup_40_updates": 4.3,
    "fig7b_speedup_20_updates": 3.1,
    "gfsl_peak_search_mops": 100.0,
    "gfsl_peak_update_mops": 50.0,
    "slabhash_max_utilization": 0.94,
}


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an ASCII table with aligned columns."""
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(widths[i]) for i, c in enumerate(cells))
    lines: List[str] = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in rows)
    return "\n".join(lines)


def format_figure(result: FigureResult) -> str:
    """Render one figure result as a titled ASCII table."""
    headers, rows = result.to_rows()
    parts = [f"{result.figure_id}: {result.title}", format_table(headers, rows)]
    if result.extra:
        extras = ", ".join(f"{k}={v:.3g}" for k, v in result.extra.items())
        parts.append(f"summary: {extras}")
    if result.notes:
        parts.append(f"note: {result.notes}")
    return "\n".join(parts) + "\n"
