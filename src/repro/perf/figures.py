"""Per-figure experiment drivers.

Each function regenerates one table or figure of the paper's evaluation
(Section VI) and returns a :class:`~repro.perf.harness.FigureResult` whose
series mirror the paper's series.  The benchmark suite under ``benchmarks/``
calls these drivers and prints their tables; EXPERIMENTS.md records the
paper-versus-modelled comparison.

Methodology ("simulate small, model at paper scale"): the data structures run
with a scaled-down number of elements (`sim_*` parameters) because the warp
simulator is pure Python, the measured per-operation event counts are scaled
to the paper's operation counts, and the cost model evaluates them with the
paper-scale working-set size (which decides L2 residency of the cuckoo
baseline's atomics).  Per-operation event counts depend on the load factor /
average slab count — which the drivers sweep exactly as the paper does — and
not on the absolute element count, so the trends are preserved.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.allocators.baselines import CudaMallocAllocator, HallocLikeAllocator
from repro.baselines.cuckoo import CuckooHashTable
from repro.baselines.gfsl import GFSLModel
from repro.baselines.misra import MisraHashTable
from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy
from repro.core.slab_hash import SlabHash
from repro.engine import ShardedSlabHash
from repro.gpusim.costmodel import CostModel
from repro.gpusim.counters import Counters
from repro.gpusim.device import Device, TESLA_K40C
from repro.gpusim.scheduler import WarpScheduler
from repro.gpusim.warp import Warp
from repro.perf.harness import FigureResult, Series
from repro.perf.metrics import Measurement, measure_phase
from repro.workloads.churn import apply_churn_step, build_churn_workload
from repro.workloads.distributions import (
    PAPER_DISTRIBUTIONS,
    OperationDistribution,
    build_concurrent_workload,
)
from repro.workloads.generators import (
    existing_queries,
    missing_queries,
    split_batches,
    unique_random_keys,
    values_for_keys,
)

__all__ = [
    "DEFAULT_UTILIZATIONS",
    "figure_4a",
    "figure_4b",
    "figure_4c",
    "figure_5a",
    "figure_5b",
    "figure_6",
    "figure_7a",
    "figure_7b",
    "allocator_comparison",
    "slaballoc_light_ablation",
    "gfsl_comparison",
    "wcws_vs_per_thread",
    "slab_size_ablation",
    "shard_sweep",
    "resize_sweep",
]

#: Memory utilizations swept by Figures 4a, 4b and 7a.
DEFAULT_UTILIZATIONS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.65, 0.7, 0.8, 0.9)

#: The paper's element count for the bulk experiments (2^22).
PAPER_BULK_ELEMENTS = 2**22

#: A compact SlabAlloc sizing for scaled-down simulations (keeps host RAM low
#: while still exercising multiple super blocks and resident changes).
SIM_ALLOC_CONFIG = SlabAllocConfig(num_super_blocks=8, num_memory_blocks=64, units_per_block=256)


# --------------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------------- #


def _new_slab_hash(
    num_elements: int,
    utilization: float,
    *,
    seed: int,
    light_alloc: bool = False,
) -> SlabHash:
    """A fresh slab hash sized so its expected memory utilization hits the target."""
    buckets = SlabHash.buckets_for_utilization(num_elements, utilization)
    return SlabHash(
        buckets,
        device=Device(),
        alloc_config=SIM_ALLOC_CONFIG,
        light_alloc=light_alloc,
        seed=seed,
    )


def _cuckoo_working_set(paper_elements: int, load_factor: float) -> int:
    """Paper-scale size of the cuckoo table (drives the L2 residency decision)."""
    return int(paper_elements / load_factor) * 8


def _slab_build_measurement(
    table: SlabHash,
    keys: np.ndarray,
    values: np.ndarray,
    *,
    scale_to_ops: int,
    label: str,
) -> Measurement:
    return measure_phase(
        table.device,
        lambda: table.bulk_build(keys, values),
        num_ops=len(keys),
        scale_to_ops=scale_to_ops,
        label=label,
    )


def _slab_search_measurement(
    table: SlabHash,
    queries: np.ndarray,
    *,
    scale_to_ops: int,
    label: str,
) -> Measurement:
    return measure_phase(
        table.device,
        lambda: table.bulk_search(queries),
        num_ops=len(queries),
        scale_to_ops=scale_to_ops,
        label=label,
    )


# --------------------------------------------------------------------------- #
# Figure 4: bulk performance versus memory utilization (n = 2^22 in the paper)
# --------------------------------------------------------------------------- #


def figure_4a(
    sim_elements: int = 2**13,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    *,
    paper_elements: int = PAPER_BULK_ELEMENTS,
    seed: int = 0,
) -> FigureResult:
    """Figure 4a: bulk build rate (M elements/s) versus memory utilization."""
    result = FigureResult(
        figure_id="Figure 4a",
        title="Build rate vs memory utilization (paper scale n=2^22)",
        x_label="memory utilization",
        y_label="build rate (M elements/s)",
        notes="CUDPP load factor equals the target utilization; slab hash bucket "
        "counts are chosen from the Fig. 4c relation.",
    )
    cudpp = result.add_series("CUDPP")
    slab = result.add_series("SlabHash")

    keys = unique_random_keys(sim_elements, seed=seed)
    values = values_for_keys(keys)

    for utilization in utilizations:
        table = _new_slab_hash(sim_elements, utilization, seed=seed)
        m_slab = _slab_build_measurement(
            table, keys, values, scale_to_ops=paper_elements, label=f"slab build u={utilization}"
        )
        slab.add(utilization, m_slab.mops)

        cuckoo = CuckooHashTable.for_load_factor(sim_elements, utilization, seed=seed + 1)
        m_cuckoo = measure_phase(
            cuckoo.device,
            lambda: cuckoo.bulk_build(keys, values),
            num_ops=sim_elements,
            scale_to_ops=paper_elements,
            working_set_bytes=_cuckoo_working_set(paper_elements, utilization),
            label=f"cuckoo build lf={utilization}",
        )
        cudpp.add(utilization, m_cuckoo.mops)

    result.extra["geomean_cuckoo_over_slab"] = cudpp.geometric_mean() / slab.geometric_mean()
    result.extra["slabhash_peak_mops"] = max(slab.y)
    return result


def figure_4b(
    sim_elements: int = 2**13,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    *,
    paper_elements: int = PAPER_BULK_ELEMENTS,
    seed: int = 0,
) -> FigureResult:
    """Figure 4b: bulk search rate (M queries/s), all-found and none-found."""
    result = FigureResult(
        figure_id="Figure 4b",
        title="Search rate vs memory utilization (paper scale n=2^22)",
        x_label="memory utilization",
        y_label="search rate (M queries/s)",
    )
    series = {
        "CUDPP-all": result.add_series("CUDPP-all"),
        "CUDPP-none": result.add_series("CUDPP-none"),
        "SlabHash-all": result.add_series("SlabHash-all"),
        "SlabHash-none": result.add_series("SlabHash-none"),
    }

    keys = unique_random_keys(sim_elements, seed=seed)
    values = values_for_keys(keys)
    hits = existing_queries(keys, sim_elements, seed=seed + 1)
    misses = missing_queries(sim_elements, seed=seed + 2)

    for utilization in utilizations:
        table = _new_slab_hash(sim_elements, utilization, seed=seed)
        table.bulk_build(keys, values)
        m_all = _slab_search_measurement(
            table, hits, scale_to_ops=paper_elements, label=f"slab search-all u={utilization}"
        )
        m_none = _slab_search_measurement(
            table, misses, scale_to_ops=paper_elements, label=f"slab search-none u={utilization}"
        )
        series["SlabHash-all"].add(utilization, m_all.mops)
        series["SlabHash-none"].add(utilization, m_none.mops)

        cuckoo = CuckooHashTable.for_load_factor(sim_elements, utilization, seed=seed + 1)
        cuckoo.bulk_build(keys, values)
        working_set = _cuckoo_working_set(paper_elements, utilization)
        mc_all = measure_phase(
            cuckoo.device,
            lambda: cuckoo.bulk_search(hits),
            num_ops=len(hits),
            scale_to_ops=paper_elements,
            working_set_bytes=working_set,
        )
        mc_none = measure_phase(
            cuckoo.device,
            lambda: cuckoo.bulk_search(misses),
            num_ops=len(misses),
            scale_to_ops=paper_elements,
            working_set_bytes=working_set,
        )
        series["CUDPP-all"].add(utilization, mc_all.mops)
        series["CUDPP-none"].add(utilization, mc_none.mops)

    result.extra["geomean_cuckoo_over_slab_all"] = (
        series["CUDPP-all"].geometric_mean() / series["SlabHash-all"].geometric_mean()
    )
    result.extra["geomean_cuckoo_over_slab_none"] = (
        series["CUDPP-none"].geometric_mean() / series["SlabHash-none"].geometric_mean()
    )
    result.extra["slabhash_peak_mops"] = max(
        max(series["SlabHash-all"].y), max(series["SlabHash-none"].y)
    )
    return result


def figure_4c(
    sim_elements: int = 2**13,
    betas: Sequence[float] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0),
    *,
    seed: int = 0,
) -> FigureResult:
    """Figure 4c: achieved memory utilization versus average slab count beta."""
    result = FigureResult(
        figure_id="Figure 4c",
        title="Memory utilization vs average slab count (beta)",
        x_label="average slab count (beta)",
        y_label="memory utilization",
        notes="'measured' builds a table and reports its actual utilization; "
        "'analytic' is the Poisson occupancy model; both approach Mx/(Mx+y)=0.94.",
    )
    measured = result.add_series("measured")
    analytic = result.add_series("analytic")

    keys = unique_random_keys(sim_elements, seed=seed)
    values = values_for_keys(keys)

    for beta in betas:
        buckets = SlabHash.buckets_for_beta(sim_elements, beta)
        table = SlabHash(buckets, device=Device(), alloc_config=SIM_ALLOC_CONFIG, seed=seed)
        table.bulk_build(keys, values)
        measured.add(beta, table.memory_utilization())
        analytic.add(beta, SlabHash.expected_utilization(beta))

    result.extra["max_utilization"] = table.config.max_memory_utilization
    return result


# --------------------------------------------------------------------------- #
# Figure 5: bulk performance versus table size (60 % utilization)
# --------------------------------------------------------------------------- #


def _figure_5_common(
    table_sizes: Sequence[int],
    sim_elements: int,
    utilization: float,
    seed: int,
    *,
    include_build: bool,
    include_search: bool,
) -> Tuple[FigureResult, FigureResult]:
    build = FigureResult(
        figure_id="Figure 5a",
        title=f"Build rate vs number of elements (utilization {utilization:.0%})",
        x_label="number of elements (log2)",
        y_label="build rate (M elements/s)",
    )
    search = FigureResult(
        figure_id="Figure 5b",
        title=f"Search rate vs number of elements (utilization {utilization:.0%})",
        x_label="number of elements (log2)",
        y_label="search rate (M queries/s)",
    )
    b_cudpp = build.add_series("CUDPP")
    b_slab = build.add_series("SlabHash")
    s_series = {
        "CUDPP-all": search.add_series("CUDPP-all"),
        "CUDPP-none": search.add_series("CUDPP-none"),
        "SlabHash-all": search.add_series("SlabHash-all"),
        "SlabHash-none": search.add_series("SlabHash-none"),
    }

    keys = unique_random_keys(sim_elements, seed=seed)
    values = values_for_keys(keys)
    hits = existing_queries(keys, sim_elements, seed=seed + 1)
    misses = missing_queries(sim_elements, seed=seed + 2)

    for paper_n in table_sizes:
        log_n = math.log2(paper_n)
        working_set = _cuckoo_working_set(paper_n, utilization)

        if include_build or include_search:
            table = _new_slab_hash(sim_elements, utilization, seed=seed)
            m_build = _slab_build_measurement(
                table, keys, values, scale_to_ops=paper_n, label=f"slab build n=2^{log_n:.0f}"
            )
            if include_build:
                b_slab.add(log_n, m_build.mops)
            if include_search:
                m_all = _slab_search_measurement(table, hits, scale_to_ops=paper_n, label="")
                m_none = _slab_search_measurement(table, misses, scale_to_ops=paper_n, label="")
                s_series["SlabHash-all"].add(log_n, m_all.mops)
                s_series["SlabHash-none"].add(log_n, m_none.mops)

            cuckoo = CuckooHashTable.for_load_factor(sim_elements, utilization, seed=seed + 1)
            m_cbuild = measure_phase(
                cuckoo.device,
                lambda: cuckoo.bulk_build(keys, values),
                num_ops=sim_elements,
                scale_to_ops=paper_n,
                working_set_bytes=working_set,
            )
            if include_build:
                b_cudpp.add(log_n, m_cbuild.mops)
            if include_search:
                mc_all = measure_phase(
                    cuckoo.device,
                    lambda: cuckoo.bulk_search(hits),
                    num_ops=len(hits),
                    scale_to_ops=paper_n,
                    working_set_bytes=working_set,
                )
                mc_none = measure_phase(
                    cuckoo.device,
                    lambda: cuckoo.bulk_search(misses),
                    num_ops=len(misses),
                    scale_to_ops=paper_n,
                    working_set_bytes=working_set,
                )
                s_series["CUDPP-all"].add(log_n, mc_all.mops)
                s_series["CUDPP-none"].add(log_n, mc_none.mops)

    if include_build and b_slab.y:
        build.extra["geomean_cuckoo_over_slab"] = (
            b_cudpp.geometric_mean() / b_slab.geometric_mean()
        )
    if include_search and s_series["SlabHash-all"].y:
        search.extra["geomean_cuckoo_over_slab_all"] = (
            s_series["CUDPP-all"].geometric_mean() / s_series["SlabHash-all"].geometric_mean()
        )
        search.extra["geomean_cuckoo_over_slab_none"] = (
            s_series["CUDPP-none"].geometric_mean() / s_series["SlabHash-none"].geometric_mean()
        )
        search.extra["slabhash_all_harmonic_mean"] = len(s_series["SlabHash-all"].y) / sum(
            1.0 / y for y in s_series["SlabHash-all"].y
        )
    return build, search


def figure_5a(
    table_sizes: Sequence[int] = tuple(2**k for k in range(16, 28, 2)),
    *,
    sim_elements: int = 2**12,
    utilization: float = 0.6,
    seed: int = 0,
) -> FigureResult:
    """Figure 5a: build rate versus total number of stored elements."""
    build, _search = _figure_5_common(
        table_sizes, sim_elements, utilization, seed, include_build=True, include_search=False
    )
    return build


def figure_5b(
    table_sizes: Sequence[int] = tuple(2**k for k in range(16, 28, 2)),
    *,
    sim_elements: int = 2**12,
    utilization: float = 0.6,
    seed: int = 0,
) -> FigureResult:
    """Figure 5b: search rate versus total number of stored elements."""
    _build, search = _figure_5_common(
        table_sizes, sim_elements, utilization, seed, include_build=False, include_search=True
    )
    return search


# --------------------------------------------------------------------------- #
# Figure 6: incremental batch insertion versus rebuilding from scratch
# --------------------------------------------------------------------------- #


def figure_6(
    total_elements: int = 2**14,
    batch_sizes: Sequence[int] = (256, 512, 1024),
    *,
    final_utilization: float = 0.65,
    paper_total_elements: int = 2_000_000,
    seed: int = 0,
) -> FigureResult:
    """Figure 6: cumulative time to insert batches incrementally (slab hash) versus
    rebuilding from scratch after every batch (CUDPP cuckoo hashing).

    Batch sizes keep the paper's total/batch ratios (2 M with 32k/64k/128k
    batches); times are scaled to the paper's 2 M-element workload.
    """
    result = FigureResult(
        figure_id="Figure 6",
        title="Incremental batched insertion vs rebuild-from-scratch (final utilization 65%)",
        x_label="number of elements inserted so far (paper scale)",
        y_label="cumulative time (ms, modelled)",
        notes="SlabHash series insert each batch dynamically; the CUDPP series "
        "rebuilds the whole table from scratch after every batch.",
    )
    scale = paper_total_elements / total_elements
    keys = unique_random_keys(total_elements, seed=seed)
    values = values_for_keys(keys)
    model = CostModel(TESLA_K40C)

    for batch_size in batch_sizes:
        paper_batch = int(batch_size * scale)
        slab_series = result.add_series(f"SlabHash batch={paper_batch // 1000}k")
        cudpp_series = result.add_series(f"CUDPP batch={paper_batch // 1000}k")

        # --- Slab hash: one table, incrementally extended batch by batch.
        table = _new_slab_hash(total_elements, final_utilization, seed=seed)
        cumulative = 0.0
        inserted = 0
        for batch in split_batches(keys, batch_size):
            batch_values = values_for_keys(batch)
            m = measure_phase(
                table.device,
                lambda b=batch, v=batch_values: table.bulk_insert(b, v),
                num_ops=len(batch),
                scale_to_ops=int(len(batch) * scale),
            )
            cumulative += m.seconds
            inserted += len(batch)
            slab_series.add(inserted * scale, cumulative * 1e3)

        # --- CUDPP: rebuild from scratch with all elements seen so far.
        cumulative = 0.0
        inserted = 0
        for batch in split_batches(keys, batch_size):
            inserted += len(batch)
            all_keys = keys[:inserted]
            all_values = values[:inserted]
            cuckoo = CuckooHashTable.for_load_factor(
                inserted, final_utilization, seed=seed + 1
            )
            m = measure_phase(
                cuckoo.device,
                lambda k=all_keys, v=all_values, t=cuckoo: t.bulk_build(k, v),
                num_ops=inserted,
                scale_to_ops=int(inserted * scale),
                working_set_bytes=_cuckoo_working_set(
                    int(inserted * scale), final_utilization
                ),
                cost_model=model,
            )
            cumulative += m.seconds
            cudpp_series.add(inserted * scale, cumulative * 1e3)

        result.extra[f"speedup_batch_{paper_batch // 1000}k"] = (
            cudpp_series.y[-1] / slab_series.y[-1]
        )
    return result


# --------------------------------------------------------------------------- #
# Figure 7: concurrent benchmarks
# --------------------------------------------------------------------------- #


def figure_7a(
    sim_elements: int = 2**12,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    distributions: Sequence[OperationDistribution] = PAPER_DISTRIBUTIONS,
    *,
    operations_per_batch: Optional[int] = None,
    paper_operations: int = PAPER_BULK_ELEMENTS,
    seed: int = 0,
) -> FigureResult:
    """Figure 7a: concurrent mixed-operation rate versus initial memory utilization."""
    result = FigureResult(
        figure_id="Figure 7a",
        title="Concurrent benchmark: operation rate vs initial memory utilization",
        x_label="initial memory utilization",
        y_label="operation rate (M ops/s)",
    )
    operations_per_batch = operations_per_batch or sim_elements
    keys = unique_random_keys(sim_elements, seed=seed)
    values = values_for_keys(keys)

    for distribution in distributions:
        series = result.add_series(distribution.describe())
        for utilization in utilizations:
            table = _new_slab_hash(sim_elements, utilization, seed=seed)
            table.bulk_build(keys, values)
            workload = build_concurrent_workload(
                distribution, operations_per_batch, keys, seed=seed + 13
            )
            scheduler = WarpScheduler(seed=seed + 17)
            m = measure_phase(
                table.device,
                lambda w=workload, t=table, s=scheduler: t.concurrent_batch(
                    w.op_codes, w.keys, w.values, scheduler=s
                ),
                num_ops=len(workload),
                scale_to_ops=paper_operations,
                label=f"{distribution.describe()} u={utilization}",
            )
            series.add(utilization, m.mops)
    return result


def figure_7b(
    bucket_counts: Sequence[int] = (64, 128, 256, 512, 1024),
    *,
    num_operations: int = 2**12,
    initial_elements: int = 2**12,
    distributions: Sequence[OperationDistribution] = PAPER_DISTRIBUTIONS,
    paper_operations: int = 1_000_000,
    seed: int = 0,
) -> FigureResult:
    """Figure 7b: slab hash versus Misra & Chaudhuri's lock-free hash table.

    The paper runs one million operations per configuration and sweeps the
    number of buckets; bucket counts here are scaled down together with the
    operation count, preserving the operations-per-bucket ratios.
    """
    result = FigureResult(
        figure_id="Figure 7b",
        title="Concurrent performance vs Misra & Chaudhuri's lock-free hash table",
        x_label="number of buckets (scaled)",
        y_label="operation rate (M ops/s)",
        notes="Each configuration performs the scaled equivalent of 1 M mixed operations.",
    )
    keys = unique_random_keys(initial_elements, seed=seed)
    values = values_for_keys(keys)

    for distribution in distributions:
        slab_series = result.add_series(f"SlabHash ({distribution.describe()})")
        misra_series = result.add_series(f"Misra ({distribution.describe()})")
        for buckets in bucket_counts:
            workload = build_concurrent_workload(
                distribution, num_operations, keys, seed=seed + 29
            )

            table = SlabHash(
                buckets, device=Device(), alloc_config=SIM_ALLOC_CONFIG, seed=seed
            )
            table.bulk_build(keys, values)
            scheduler = WarpScheduler(seed=seed + 31)
            m_slab = measure_phase(
                table.device,
                lambda w=workload, t=table, s=scheduler: t.concurrent_batch(
                    w.op_codes, w.keys, w.values, scheduler=s
                ),
                num_ops=len(workload),
                scale_to_ops=paper_operations,
            )
            slab_series.add(buckets, m_slab.mops)

            misra = MisraHashTable(
                buckets,
                capacity=initial_elements + num_operations + 64,
                device=Device(),
                seed=seed,
            )
            misra.bulk_build(keys)
            m_misra = measure_phase(
                misra.device,
                lambda w=workload, t=misra: t.concurrent_batch(w.op_codes, w.keys),
                num_ops=len(workload),
                scale_to_ops=paper_operations,
            )
            misra_series.add(buckets, m_misra.mops)

        result.extra[f"speedup_{distribution.describe()}"] = (
            slab_series.geometric_mean() / misra_series.geometric_mean()
        )
    return result


# --------------------------------------------------------------------------- #
# Section V: dynamic memory allocation comparison
# --------------------------------------------------------------------------- #


def allocator_comparison(
    sim_allocations: int = 2**13,
    *,
    paper_allocations: int = 1_000_000,
    num_warps: int = 64,
    seed: int = 0,
) -> FigureResult:
    """Section V allocator comparison: 1 M slab allocations under the WCWS pattern.

    Reported rates correspond to one million 128-byte slab allocations issued
    one at a time per warp, the access pattern the slab hash generates.
    """
    result = FigureResult(
        figure_id="Section V",
        title="Dynamic allocation rate under the WCWS allocation pattern (1 M slabs, 128 B)",
        x_label="allocator",
        y_label="allocation rate (M slabs/s)",
        notes="CUDA-malloc and Halloc stand-ins are calibrated to the paper's "
        "published measurements (see repro.allocators.baselines).",
    )
    series = result.add_series("allocation rate")

    # --- SlabAlloc: counted events drive the rate.
    from repro.core.slab_alloc import SlabAlloc  # local import to avoid cycles

    device = Device()
    slab_alloc = SlabAlloc(device, SlabAllocConfig(num_super_blocks=8, num_memory_blocks=128), seed=seed)
    warps = [Warp(i, device.counters) for i in range(num_warps)]

    def run_slaballoc() -> None:
        device.launch_kernel()
        for i in range(sim_allocations):
            slab_alloc.warp_allocate(warps[i % num_warps])

    m_slab = measure_phase(
        device,
        run_slaballoc,
        num_ops=sim_allocations,
        scale_to_ops=paper_allocations,
        label="SlabAlloc",
    )
    series.add(0, m_slab.mops)

    # --- Halloc-like baseline.
    halloc = HallocLikeAllocator(paper_allocations + sim_allocations, device=Device())

    def run_halloc() -> None:
        halloc.device.launch_kernel()
        for _ in range(sim_allocations):
            halloc.allocate()

    m_halloc = measure_phase(
        halloc.device,
        run_halloc,
        num_ops=sim_allocations,
        scale_to_ops=paper_allocations,
        extra_serial_seconds=sim_allocations * HallocLikeAllocator.SERIAL_LATENCY,
        label="Halloc",
    )
    series.add(1, m_halloc.mops)

    # --- CUDA-malloc-like baseline.
    cuda_malloc = CudaMallocAllocator(paper_allocations + sim_allocations, device=Device())

    def run_malloc() -> None:
        cuda_malloc.device.launch_kernel()
        for _ in range(sim_allocations):
            cuda_malloc.allocate()

    m_malloc = measure_phase(
        cuda_malloc.device,
        run_malloc,
        num_ops=sim_allocations,
        scale_to_ops=paper_allocations,
        extra_serial_seconds=sim_allocations * CudaMallocAllocator.SERIAL_LATENCY,
        label="CUDA malloc",
    )
    series.add(2, m_malloc.mops)

    result.extra["slaballoc_mops"] = m_slab.mops
    result.extra["halloc_mops"] = m_halloc.mops
    result.extra["cuda_malloc_mops"] = m_malloc.mops
    result.extra["slaballoc_over_halloc"] = m_slab.mops / m_halloc.mops
    result.extra["slaballoc_over_malloc"] = m_slab.mops / m_malloc.mops
    result.notes += "  x-axis: 0=SlabAlloc, 1=Halloc, 2=CUDA malloc."
    return result


# --------------------------------------------------------------------------- #
# Ablations and analytic comparisons
# --------------------------------------------------------------------------- #


def slaballoc_light_ablation(
    sim_elements: int = 2**13,
    *,
    utilization: float = 0.8,
    paper_elements: int = PAPER_BULK_ELEMENTS,
    seed: int = 0,
) -> FigureResult:
    """SlabAlloc versus SlabAlloc-light on a lookup-heavy workload (Section V).

    The paper reports up to 25 % higher search rates with the light variant
    when memory lookups dominate (long chains, so most slab reads require an
    address decode).
    """
    result = FigureResult(
        figure_id="Section V (light)",
        title="SlabAlloc vs SlabAlloc-light on bulk searches",
        x_label="variant (0=regular, 1=light)",
        y_label="search rate (M queries/s)",
    )
    series = result.add_series("search rate")
    keys = unique_random_keys(sim_elements, seed=seed)
    values = values_for_keys(keys)
    queries = existing_queries(keys, sim_elements, seed=seed + 1)

    rates = {}
    for idx, light in enumerate((False, True)):
        table = _new_slab_hash(sim_elements, utilization, seed=seed, light_alloc=light)
        table.bulk_build(keys, values)
        m = _slab_search_measurement(
            table, queries, scale_to_ops=paper_elements, label="light" if light else "regular"
        )
        series.add(idx, m.mops)
        rates["light" if light else "regular"] = m.mops
    result.extra["light_speedup"] = rates["light"] / rates["regular"]
    return result


def gfsl_comparison() -> FigureResult:
    """Section VI-C: the analytic GFSL comparison (peak search/update rates)."""
    result = FigureResult(
        figure_id="Section VI-C (GFSL)",
        title="GFSL (lock-based skip list) peak rates vs slab hash peak rates",
        x_label="operation (0=search, 1=update)",
        y_label="peak rate (M ops/s)",
        notes="GFSL modelled on its published platform (GTX 970); slab hash peaks "
        "are the paper's headline numbers reproduced by Figure 4.",
    )
    gfsl = GFSLModel()
    gfsl_series = result.add_series("GFSL")
    gfsl_series.add(0, gfsl.peak_search_rate() / 1e6)
    gfsl_series.add(1, gfsl.peak_update_rate() / 1e6)

    slab_series = result.add_series("SlabHash (paper peak)")
    slab_series.add(0, 937.0)
    slab_series.add(1, 512.0)

    result.extra["gfsl_peak_search_mops"] = gfsl.peak_search_rate() / 1e6
    result.extra["gfsl_peak_update_mops"] = gfsl.peak_update_rate() / 1e6
    return result


def wcws_vs_per_thread(
    sim_elements: int = 2**13,
    *,
    utilization: float = 0.6,
    paper_elements: int = PAPER_BULK_ELEMENTS,
    seed: int = 0,
) -> FigureResult:
    """Ablation of the warp-cooperative work sharing strategy (Section IV-A).

    The WCWS rate is measured from the real slab hash.  The per-thread variant
    re-prices the *same* traversal under traditional per-thread processing:
    every slab a query visited becomes ~16 scattered word reads (the thread
    walks its chain alone, no coalescing) and the per-thread control flow is
    charged un-amortized (divergence serialization), which is exactly the
    behaviour the paper's strategy avoids.
    """
    result = FigureResult(
        figure_id="Section IV-A",
        title="WCWS vs per-thread processing of the same slab-list traversals",
        x_label="strategy (0=WCWS, 1=per-thread)",
        y_label="search rate (M queries/s)",
    )
    series = result.add_series("search rate")

    keys = unique_random_keys(sim_elements, seed=seed)
    values = values_for_keys(keys)
    queries = existing_queries(keys, sim_elements, seed=seed + 1)

    table = _new_slab_hash(sim_elements, utilization, seed=seed)
    table.bulk_build(keys, values)
    m_wcws = _slab_search_measurement(table, queries, scale_to_ops=paper_elements, label="wcws")
    series.add(0, m_wcws.mops)

    # Re-price the same traversals under per-thread processing.
    slab_visits = m_wcws.counters.coalesced_read_transactions
    per_thread = Counters(
        uncoalesced_read_words=slab_visits * (C.PAIRS_PER_SLAB + 1),
        warp_instructions=m_wcws.num_ops * 120
        + slab_visits * 40,
        kernel_launches=1,
    )
    model = CostModel(TESLA_K40C)
    rate = model.throughput(m_wcws.num_ops, per_thread)
    series.add(1, rate / 1e6)

    result.extra["wcws_speedup"] = m_wcws.mops / (rate / 1e6)
    return result


def shard_sweep(
    sim_elements: int = 2**13,
    shard_counts: Sequence[int] = (1, 2, 4, 8, 16),
    *,
    utilization: float = 0.6,
    paper_operations: int = PAPER_BULK_ELEMENTS,
    policy: str = "hash",
    seed: int = 0,
) -> FigureResult:
    """Shard-count sweep of the sharded multi-table engine (beyond the paper).

    Partitions the key space across 1..N independent slab hashes — each with
    its own simulated device and allocator, modeling multi-SM groups or
    multiple GPUs — and reports modelled throughput for three workloads:

    * **build** — bulk-build the whole element set through the router;
    * **search** — bulk-search every stored key;
    * **mixed** — a Figure-7-style concurrent batch (40 % updates).

    Shards execute in parallel, so engine time is the slowest shard's
    modelled time; the ``build speedup`` series normalizes build throughput
    by the smallest swept shard count, which is the scaling-efficiency number
    quoted in the README.  Hash routing is slightly imbalanced (multinomial
    key splits), so speedups track, but do not exactly reach, the shard count.
    """
    result = FigureResult(
        figure_id="Shard sweep",
        title=f"Sharded engine scaling (routing={policy}, utilization {utilization:.0%})",
        x_label="number of shards",
        y_label="operation rate (M ops/s)",
        notes="Each shard is an independent SlabHash on its own simulated "
        "device; engine time is the slowest shard's modelled time. "
        "'build speedup' is normalized to the smallest swept shard count.",
    )
    build_series = result.add_series("build")
    search_series = result.add_series("search")
    mixed_series = result.add_series("mixed 40% updates")
    speedup_series = result.add_series("build speedup")

    keys = unique_random_keys(sim_elements, seed=seed)
    values = values_for_keys(keys)
    hits = existing_queries(keys, sim_elements, seed=seed + 1)
    workload = build_concurrent_workload(
        PAPER_DISTRIBUTIONS[1], sim_elements, keys, seed=seed + 13
    )

    stats_by_count = {}
    for num_shards in shard_counts:
        engine = ShardedSlabHash.for_utilization(
            num_shards,
            sim_elements,
            utilization,
            policy=policy,
            alloc_config=SIM_ALLOC_CONFIG,
            seed=seed,
        )
        build = engine.measure(
            lambda: engine.bulk_build(keys, values),
            scale_to_ops=paper_operations,
            label=f"build x{num_shards}",
        )
        search = engine.measure(
            lambda: engine.bulk_search(hits),
            scale_to_ops=paper_operations,
            label=f"search x{num_shards}",
        )
        mixed = engine.measure(
            lambda: engine.concurrent_batch(
                workload.op_codes, workload.keys, workload.values,
                scheduler_seed=seed + 17,
            ),
            scale_to_ops=paper_operations,
            label=f"mixed x{num_shards}",
        )
        build_series.add(num_shards, build.mops)
        search_series.add(num_shards, search.mops)
        mixed_series.add(num_shards, mixed.mops)
        stats_by_count[num_shards] = build

    # Normalize to the smallest swept shard count, whatever the sweep order.
    base = min(stats_by_count)
    base_build_mops = stats_by_count[base].mops
    for num_shards in shard_counts:
        speedup_series.add(num_shards, stats_by_count[num_shards].mops / base_build_mops)

    if 4 in stats_by_count:
        result.extra["build_speedup_4_shards"] = stats_by_count[4].mops / base_build_mops
    top = max(stats_by_count)
    result.extra["build_speedup_max_shards"] = stats_by_count[top].mops / base_build_mops
    result.extra["scaling_efficiency_max_shards"] = result.extra[
        "build_speedup_max_shards"
    ] / (top / base)
    result.extra["load_imbalance_max_shards"] = stats_by_count[top].load_imbalance
    return result


def resize_sweep(
    sim_elements: int = 2**12,
    *,
    cycles: int = 3,
    base_divisor: int = 8,
    paper_operations: int = PAPER_BULK_ELEMENTS,
    seed: int = 0,
) -> FigureResult:
    """Churn scenario: adaptive online resizing versus fixed-bucket tables.

    Runs the same churn workload (population swinging between
    ``sim_elements / base_divisor`` and ``sim_elements`` for ``cycles``
    insert/delete cycles, :mod:`repro.workloads.churn`) against three tables:

    * **fixed-undersized** — bucket count frozen at the base population's
      target-beta sizing; chains stretch far past beta at every peak and
      tombstones pile up cycle over cycle;
    * **fixed-rightsized** — sized for the peak (memory held even at the
      trough, the static-over-provisioning answer);
    * **adaptive** — starts undersized with a
      :class:`~repro.core.resize.LoadFactorPolicy` attached, so it grows and
      shrinks with the population and every migration drops the accumulated
      tombstones.

    Reports modelled throughput per cycle for each table (migration cost is
    charged to the adaptive series' own cycles) plus the adaptive table's
    measured beta trajectory.  The ``adaptive_over_undersized`` extra is the
    end-to-end modelled-time ratio the README quotes.
    """
    base_elements = max(64, sim_elements // base_divisor)
    workload = build_churn_workload(
        sim_elements, base_elements=base_elements, cycles=cycles, seed=seed
    )
    undersized_buckets = SlabHash.buckets_for_beta(base_elements, 0.6)
    policy = LoadFactorPolicy(min_buckets=max(1, undersized_buckets // 2))

    result = FigureResult(
        figure_id="Resize sweep",
        title=(
            f"Churn workload ({base_elements}..{sim_elements} elements, "
            f"{cycles} cycles): adaptive resizing vs fixed buckets"
        ),
        x_label="churn cycle",
        y_label="operation rate (M ops/s)",
        notes="Adaptive cycles include their own migration cost; 'adaptive beta' "
        "is the measured average slab count after each cycle (policy band "
        f"[{policy.beta_low}, {policy.beta_high}]).",
    )
    beta_series = result.add_series("adaptive beta")

    configs = {
        "fixed-undersized": SlabHash(
            undersized_buckets, device=Device(), alloc_config=SIM_ALLOC_CONFIG, seed=seed
        ),
        "fixed-rightsized": SlabHash(
            SlabHash.buckets_for_beta(sim_elements, 0.6),
            device=Device(),
            alloc_config=SIM_ALLOC_CONFIG,
            seed=seed,
        ),
        "adaptive": SlabHash(
            undersized_buckets,
            device=Device(),
            alloc_config=SIM_ALLOC_CONFIG,
            seed=seed,
            policy=policy,
        ),
    }

    total_seconds = {}
    for name, table in configs.items():
        series = result.add_series(name)
        total = 0.0
        for cycle in range(cycles):
            steps = workload.cycle_steps(cycle)
            ops = sum(len(step) for step in steps)
            m = measure_phase(
                table.device,
                lambda t=table, s=steps: [apply_churn_step(t, step) for step in s],
                num_ops=ops,
                scale_to_ops=paper_operations,
                label=f"{name} cycle {cycle}",
            )
            series.add(cycle, m.mops)
            total += m.seconds
            if name == "adaptive":
                beta_series.add(cycle, table.beta())
        total_seconds[name] = total

    adaptive = configs["adaptive"]
    result.extra["adaptive_over_undersized"] = (
        total_seconds["fixed-undersized"] / total_seconds["adaptive"]
    )
    result.extra["adaptive_over_rightsized"] = (
        total_seconds["fixed-rightsized"] / total_seconds["adaptive"]
    )
    result.extra["adaptive_grows"] = adaptive.resize_stats.grows
    result.extra["adaptive_shrinks"] = adaptive.resize_stats.shrinks
    result.extra["adaptive_final_beta"] = adaptive.beta()
    result.extra["adaptive_final_buckets"] = adaptive.num_buckets
    result.extra["adaptive_beta_in_band"] = float(
        policy.decide(len(adaptive), adaptive.num_buckets, adaptive.config.elements_per_slab)
        is None
    )
    return result


def slab_size_ablation(
    slab_bytes_options: Sequence[int] = (32, 64, 128, 256),
    *,
    beta_elements_per_bucket: float = 0.7,
    key_value: bool = True,
) -> FigureResult:
    """Design-choice ablation: slab size (Section III-A / IV-B).

    Analytic: smaller slabs waste less space per pointer but need more memory
    transactions per traversal and cannot give each warp lane a full word; the
    128-byte choice matches the warp's physical memory access width.
    """
    result = FigureResult(
        figure_id="Section IV-B",
        title="Slab-size ablation: utilization ceiling and modelled search cost",
        x_label="slab size (bytes)",
        y_label="value",
        notes="'max utilization' is Mx/(Mx+y); 'relative search cost' is modelled "
        "memory transactions per query at fixed elements-per-bucket, normalized "
        "to the 128-byte slab.",
    )
    util_series = result.add_series("max utilization")
    cost_series = result.add_series("relative search cost")

    element_bytes = 8 if key_value else 4
    reference_cost = None
    for slab_bytes in slab_bytes_options:
        data_bytes = slab_bytes - 8  # pointer word + auxiliary word
        elements_per_slab = max(1, data_bytes // element_bytes)
        max_util = (elements_per_slab * element_bytes) / slab_bytes
        util_series.add(slab_bytes, max_util)

        # Elements per bucket fixed (beta at the 128-byte reference); smaller
        # slabs mean proportionally more slabs (and transactions) per chain.
        elements_per_bucket = beta_elements_per_bucket * (120 // element_bytes)
        slabs_per_chain = max(1.0, elements_per_bucket / elements_per_slab)
        transactions = slabs_per_chain * max(1.0, slab_bytes / 128.0)
        if reference_cost is None and slab_bytes == 128:
            reference_cost = transactions
    # Normalize after the reference is known (fall back to the last value).
    reference_cost = reference_cost or transactions
    for slab_bytes in slab_bytes_options:
        data_bytes = slab_bytes - 8
        elements_per_slab = max(1, data_bytes // element_bytes)
        elements_per_bucket = beta_elements_per_bucket * (120 // element_bytes)
        slabs_per_chain = max(1.0, elements_per_bucket / elements_per_slab)
        transactions = slabs_per_chain * max(1.0, slab_bytes / 128.0)
        cost_series.add(slab_bytes, transactions / reference_cost)
    return result
