"""Per-operation latency accounting: percentile reports for the service layer.

The request-service layer (:mod:`repro.service`) trades latency for
throughput: operations wait in a micro-batch so the engine can run them as
one warp-aligned concurrent batch.  This module provides the measurement
side of that trade-off — a lightweight recorder for per-operation latency
samples and a frozen percentile report — so the service (and the
``benchmarks/bench_service_latency.py`` benchmark) can quote p50/p90/p99
next to throughput, the way a serving system would.

Latencies here are *host wall-clock* seconds (enqueue to completion), which
is what a client of the simulation-backed service actually waits; the
modelled device time of each executed batch is reported separately by
:class:`repro.service.ServiceStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

__all__ = ["LatencyReport", "LatencyRecorder", "DEFAULT_PERCENTILES"]

#: The percentiles a :class:`LatencyReport` always carries.
DEFAULT_PERCENTILES: Tuple[float, ...] = (50.0, 90.0, 99.0)


@dataclass(frozen=True)
class LatencyReport:
    """Summary statistics over a set of latency samples (seconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencyReport":
        """Build a report from raw samples; all-zero when there are none."""
        values = np.asarray(list(samples), dtype=np.float64)
        if values.size == 0:
            return cls(count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, max=0.0)
        p50, p90, p99 = np.percentile(values, DEFAULT_PERCENTILES)
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            p50=float(p50),
            p90=float(p90),
            p99=float(p99),
            max=float(values.max()),
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view with explicit units (used by the bench JSON)."""
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.p50,
            "p90_s": self.p90,
            "p99_s": self.p99,
            "max_s": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyReport(n={self.count}, p50={self.p50 * 1e3:.3f}ms, "
            f"p90={self.p90 * 1e3:.3f}ms, p99={self.p99 * 1e3:.3f}ms)"
        )


class LatencyRecorder:
    """Accumulates latency samples and produces :class:`LatencyReport` views.

    Deliberately minimal: a list of floats plus a report constructor, so the
    service can record one sample per completed operation without measurable
    overhead, then summarize on demand.
    """

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, seconds: float) -> None:
        """Record one completed operation's latency."""
        self._samples.append(float(seconds))

    def extend(self, seconds: Iterable[float]) -> None:
        """Record a batch worth of latencies at once."""
        self._samples.extend(float(s) for s in seconds)

    def __len__(self) -> int:
        return len(self._samples)

    def report(self) -> LatencyReport:
        """Summarize everything recorded so far."""
        return LatencyReport.from_samples(self._samples)

    def reset(self) -> None:
        """Drop all recorded samples."""
        self._samples.clear()
