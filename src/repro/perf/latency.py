"""Per-operation latency accounting: percentile reports for the service layer.

The request-service layer (:mod:`repro.service`) trades latency for
throughput: operations wait in a micro-batch so the engine can run them as
one warp-aligned concurrent batch.  This module provides the measurement
side of that trade-off — a lightweight recorder for per-operation latency
samples and a frozen percentile report — so the service (and the
``benchmarks/bench_service_latency.py`` benchmark) can quote p50/p90/p99
next to throughput, the way a serving system would.

Latencies here are *host wall-clock* seconds (enqueue to completion), which
is what a client of the simulation-backed service actually waits; the
modelled device time of each executed batch is reported separately by
:class:`repro.service.ServiceStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

__all__ = ["LatencyReport", "LatencyRecorder", "DEFAULT_PERCENTILES"]

#: The percentiles a :class:`LatencyReport` always carries.
DEFAULT_PERCENTILES: Tuple[float, ...] = (50.0, 90.0, 99.0)


@dataclass(frozen=True)
class LatencyReport:
    """Summary statistics over a set of latency samples (seconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencyReport":
        """Build a report from raw samples; all-zero when there are none."""
        values = np.asarray(list(samples), dtype=np.float64)
        if values.size == 0:
            return cls(count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, max=0.0)
        p50, p90, p99 = np.percentile(values, DEFAULT_PERCENTILES)
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            p50=float(p50),
            p90=float(p90),
            p99=float(p99),
            max=float(values.max()),
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view with explicit units (used by the bench JSON)."""
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.p50,
            "p90_s": self.p90,
            "p99_s": self.p99,
            "max_s": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyReport(n={self.count}, p50={self.p50 * 1e3:.3f}ms, "
            f"p90={self.p90 * 1e3:.3f}ms, p99={self.p99 * 1e3:.3f}ms)"
        )


class LatencyRecorder:
    """Accumulates latency samples and produces :class:`LatencyReport` views.

    Deliberately minimal, and deliberately cheap on the bulk path: the
    vectorized service records one *run* of identical samples per executed
    chunk (every operation of an admission shares an enqueue time, every
    operation of a batch shares a completion time), so :meth:`record_many`
    stores ``(value, count)`` pairs instead of materializing per-operation
    floats.  :meth:`report` expands runs lazily, only when percentiles are
    actually requested.
    """

    __slots__ = ("_samples", "_runs", "_run_count")

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._runs: List[Tuple[float, int]] = []
        self._run_count = 0

    def record(self, seconds: float) -> None:
        """Record one completed operation's latency."""
        self._samples.append(float(seconds))

    def record_many(self, seconds: float, count: int) -> None:
        """Record ``count`` operations that all observed the same latency.

        O(1) per call: this is the service's bulk path — one call per
        executed chunk, however many operations the chunk carried.
        """
        if count <= 0:
            return
        self._runs.append((float(seconds), int(count)))
        self._run_count += int(count)

    def extend(self, seconds: Iterable[float]) -> None:
        """Record a batch worth of latencies at once."""
        self._samples.extend(float(s) for s in seconds)

    def __len__(self) -> int:
        return len(self._samples) + self._run_count

    def report(self) -> LatencyReport:
        """Summarize everything recorded so far."""
        if not self._runs:
            return LatencyReport.from_samples(self._samples)
        values = np.array([value for value, _ in self._runs], dtype=np.float64)
        counts = np.array([count for _, count in self._runs], dtype=np.int64)
        expanded = np.repeat(values, counts)
        if self._samples:
            expanded = np.concatenate(
                [np.asarray(self._samples, dtype=np.float64), expanded]
            )
        return LatencyReport.from_samples(expanded)

    def reset(self) -> None:
        """Drop all recorded samples."""
        self._samples.clear()
        self._runs.clear()
        self._run_count = 0
