"""Key-space routing for the sharded engine.

A :class:`ShardRouter` decides which shard owns each operation of a stream.
Three policies are supported:

* ``"hash"`` (default) — a draw from the same universal family the slab hash
  uses for buckets (:class:`repro.core.hashing.UniversalHash`), with an
  independent seed so shard choice and bucket choice are uncorrelated.  Every
  occurrence of a key maps to the same shard, so per-key operation order is
  preserved and sharded results are identical to an unsharded table.
* ``"range"`` — contiguous partition of the storable key domain
  ``[0, MAX_USER_KEY)`` into ``num_shards`` equal ranges.  Also a proper
  partition by key; useful when the key space is uniform or when range
  locality matters (e.g. future range-scan support).
* ``"round-robin"`` — operations are dealt to shards in rotation regardless
  of key.  This balances perfectly but is **not** a function of the key, so
  it is only sound for build-only loads (duplicate-free bulk inserts);
  the engine refuses to search/delete through a round-robin router.

All policies are deterministic given the seed and the sequence of calls.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core import constants as C
from repro.core.hashing import UniversalHash

__all__ = ["ROUTING_POLICIES", "ShardRouter"]

#: The routing policies understood by :class:`ShardRouter`.
ROUTING_POLICIES: Tuple[str, ...] = ("hash", "range", "round-robin")


class ShardRouter:
    """Maps keys (or stream positions) to shard indices.

    Parameters
    ----------
    num_shards:
        Number of shards N; shard indices are in ``[0, N)``.
    policy:
        One of :data:`ROUTING_POLICIES`.
    seed:
        Seed for the universal-hash draw (``"hash"`` policy only).
    """

    def __init__(self, num_shards: int, *, policy: str = "hash", seed: int = 0) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if policy not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing policy {policy!r}; choose from {ROUTING_POLICIES}")
        self.num_shards = int(num_shards)
        self.policy = policy
        self._hash = UniversalHash(num_shards, seed=seed) if policy == "hash" else None
        self._rr_cursor = 0  # next shard the round-robin deal starts from

    @property
    def key_partitioning(self) -> bool:
        """True when every occurrence of a key routes to the same shard."""
        return self.policy in ("hash", "range")

    def route(self, keys: np.ndarray) -> np.ndarray:
        """Shard index for each key of a stream (in stream order)."""
        keys = np.asarray(keys, dtype=np.uint64)
        if self.num_shards == 1:
            return np.zeros(keys.shape, dtype=np.int64)
        if self.policy == "hash":
            return self._hash.hash_array(keys)
        if self.policy == "range":
            shards = (keys * np.uint64(self.num_shards)) // np.uint64(C.MAX_USER_KEY)
            # Reserved keys (>= MAX_USER_KEY) would index one past the last
            # shard; clamp so they still route somewhere and the shard's own
            # key validation rejects them, exactly as an unsharded table does.
            return np.minimum(shards, np.uint64(self.num_shards - 1)).astype(np.int64)
        # round-robin: deal by stream position, continuing from the last call.
        shards = (self._rr_cursor + np.arange(keys.size, dtype=np.int64)) % self.num_shards
        self._rr_cursor = int((self._rr_cursor + keys.size) % self.num_shards)
        return shards

    def shard_of(self, key: int) -> int:
        """Shard index of one key (advances the round-robin cursor by one)."""
        return int(self.route(np.array([key], dtype=np.uint64))[0])

    def partition(self, keys: np.ndarray) -> List[np.ndarray]:
        """Per-shard index arrays, each in ascending stream order.

        ``partition(keys)[s]`` holds the positions of ``keys`` routed to shard
        ``s``; the arrays are disjoint and together cover every position.
        """
        shards = self.route(keys)
        return [np.flatnonzero(shards == s) for s in range(self.num_shards)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardRouter(shards={self.num_shards}, policy={self.policy!r})"
