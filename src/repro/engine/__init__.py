"""Sharded multi-table engine: scale the slab hash beyond one device.

This package layers a concurrent-workload engine on top of
:mod:`repro.core`:

* :class:`~repro.engine.router.ShardRouter` — key-space routing policies
  (hash-partition, range-partition, round-robin for build-only loads);
* :class:`~repro.engine.sharded.ShardedSlabHash` — N independent
  :class:`~repro.core.slab_hash.SlabHash` shards, each with its own simulated
  device and allocator, behind SlabHash's bulk/concurrent API;
* :class:`~repro.engine.parallel.ProcessShardExecutor` — opt-in real
  multiprocess shard execution (``ShardedSlabHash(executor="process")``):
  worker-resident shards, bit-identical results and counters, measured
  wall-clock concurrency;
* :class:`~repro.engine.stats.EngineStats` — merged per-shard counters plus
  the parallel (max-over-shards) and serial (sum-over-shards) time views.

The ``reproduce shard-sweep`` experiment and ``benchmarks/bench_sharded.py``
are driven by this package; ``docs/ARCHITECTURE.md`` shows where it sits in
the layer diagram.
"""

from repro.engine.parallel import ProcessShardExecutor
from repro.engine.router import ROUTING_POLICIES, ShardRouter
from repro.engine.sharded import MigrationInFlightError, ShardedSlabHash
from repro.engine.stats import EngineStats, ShardPhase, merge_counters

__all__ = [
    "ROUTING_POLICIES",
    "MigrationInFlightError",
    "ProcessShardExecutor",
    "ShardRouter",
    "ShardedSlabHash",
    "EngineStats",
    "ShardPhase",
    "merge_counters",
]
