"""Aggregated measurements for the sharded engine.

Each shard owns its own :class:`~repro.gpusim.device.Device`, so a sharded
phase produces one :class:`~repro.gpusim.counters.Counters` stream per shard.
:class:`EngineStats` merges them into the quantities the shard-sweep
experiment reports:

* the **aggregate** counters (elementwise sum over shards) — total device
  work, used for sanity checks and per-op profiles;
* **parallel time** — the shards model independent SMs/GPUs, so the engine's
  modelled wall time is the *maximum* of the per-shard modelled times;
* **serial time** — the sum of per-shard times, i.e. what one device running
  the shards back to back would take; ``parallel_speedup`` is their ratio;
* **load imbalance** — max over mean operations per shard; a perfectly
  balanced routing policy gives 1.0.

Throughput follows the same *simulate small, model at paper scale*
methodology as :func:`repro.perf.metrics.measure_phase`: per-shard event
counts are scaled by a common factor before pricing, so relative shard loads
(and therefore the parallel/serial ratio) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.gpusim.costmodel import CostModel
from repro.gpusim.counters import Counters, scale_counters

__all__ = ["ShardPhase", "EngineStats", "merge_counters"]


def merge_counters(counters: Sequence[Counters]) -> Counters:
    """Elementwise sum of several shard counter snapshots."""
    total = Counters()
    for c in counters:
        total += c
    return total


@dataclass(frozen=True)
class ShardPhase:
    """One shard's share of a measured phase."""

    shard: int
    num_ops: int
    counters: Counters
    seconds: float


@dataclass(frozen=True)
class EngineStats:
    """Merged per-shard measurements of one engine phase."""

    label: str
    num_ops: int
    shards: List[ShardPhase] = field(default_factory=list)

    @classmethod
    def from_shard_events(
        cls,
        events: Sequence[Counters],
        ops_per_shard: Sequence[int],
        *,
        cost_model: CostModel,
        scale_to_ops: Optional[int] = None,
        label: str = "",
    ) -> "EngineStats":
        """Price each shard's events and assemble the merged statistics.

        Parameters
        ----------
        events / ops_per_shard:
            Per-shard counter deltas and the number of logical operations each
            shard handled (aligned by shard index).
        scale_to_ops:
            If given, every shard's counts are scaled by the common factor
            ``scale_to_ops / sum(ops_per_shard)`` before pricing (the
            paper-scale extrapolation).

        A phase that routed no operations is allowed (``num_ops=0``): a pure
        maintenance phase such as :meth:`~repro.engine.sharded.ShardedSlabHash.rebalance`
        still produces device events (the migrations), which are merged and
        priced normally; throughput reports 0 and the load imbalance 1.0.
        Such a phase cannot be scaled to a paper-size operation count.
        """
        if len(events) != len(ops_per_shard):
            raise ValueError("events and ops_per_shard must have one entry per shard")
        total_ops = int(sum(ops_per_shard))
        factor = 1.0
        reported_ops = total_ops
        if scale_to_ops is not None and scale_to_ops != total_ops:
            if total_ops <= 0:
                raise ValueError(
                    "cannot scale a phase that performed no operations to a "
                    "target operation count"
                )
            factor = scale_to_ops / total_ops
            reported_ops = scale_to_ops
        phases = []
        for shard, (counters, ops) in enumerate(zip(events, ops_per_shard)):
            scaled = scale_counters(counters, factor) if factor != 1.0 else counters
            seconds = cost_model.elapsed(scaled).total_time
            phases.append(
                ShardPhase(
                    shard=shard,
                    num_ops=int(round(ops * factor)),
                    counters=scaled,
                    seconds=seconds,
                )
            )
        return cls(label=label, num_ops=reported_ops, shards=phases)

    # ------------------------------------------------------------------ #
    # Merged quantities
    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def aggregate(self) -> Counters:
        """Total device work: elementwise sum of the per-shard counters."""
        return merge_counters([p.counters for p in self.shards])

    @property
    def parallel_seconds(self) -> float:
        """Modelled engine wall time: shards run concurrently, so the max."""
        return max(p.seconds for p in self.shards)

    @property
    def serial_seconds(self) -> float:
        """Modelled time if one device ran every shard back to back."""
        return sum(p.seconds for p in self.shards)

    @property
    def parallel_speedup(self) -> float:
        """Serial over parallel time — the payoff of the extra hardware."""
        return self.serial_seconds / self.parallel_seconds

    @property
    def throughput(self) -> float:
        """Operations per second of modelled parallel time.

        A zero-operation maintenance phase reports 0 even when it also
        produced no device events (e.g. measuring an already-quiescent
        ``maybe_resize``), never ``inf``.
        """
        if self.num_ops == 0:
            return 0.0
        seconds = self.parallel_seconds
        return self.num_ops / seconds if seconds > 0 else float("inf")

    @property
    def mops(self) -> float:
        """Throughput in the paper's M ops/s units."""
        return self.throughput / 1e6

    @property
    def load_imbalance(self) -> float:
        """Max over mean operations per shard (1.0 = perfectly balanced)."""
        busiest = max(p.num_ops for p in self.shards)
        return busiest * self.num_shards / self.num_ops if self.num_ops else 1.0

    def per_op(self, field_name: str) -> float:
        """Average count of one aggregate counter event per operation."""
        if self.num_ops == 0:
            raise ValueError("per_op is undefined for a zero-operation (maintenance) phase")
        return getattr(self.aggregate, field_name) / self.num_ops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EngineStats({self.label!r}, shards={self.num_shards}, "
            f"ops={self.num_ops}, mops={self.mops:.1f}, "
            f"speedup={self.parallel_speedup:.2f})"
        )
