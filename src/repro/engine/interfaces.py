"""Typed boundary between the sharded engine and its executors.

:class:`ShardExecutor` is a :class:`~typing.Protocol` describing exactly the
surface :class:`~repro.engine.sharded.ShardedSlabHash` (and the service's
quarantine-restore path) relies on.  The concrete implementation today is
:class:`~repro.engine.parallel.ProcessShardExecutor`; anything else that
satisfies this protocol — an in-process mock in tests, a future thread- or
RPC-backed executor — plugs in without the engine changing, and the strict
typing pass checks the call sites against this interface instead of a
concrete class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Protocol, Sequence, Tuple

if TYPE_CHECKING:
    from repro.core.slab_hash import SlabHash
    from repro.engine.parallel import ShardQuery
    from repro.faults import FaultPlan

__all__ = ["ShardExecutor"]


class ShardExecutor(Protocol):
    """What the engine needs from a shard executor (see module docstring)."""

    #: Optional chaos plan consulted at the ``shard:<i>.worker`` site.
    faults: Optional["FaultPlan"]

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; a closed executor rejects dispatches."""
        ...

    def call(self, shard: int, method: str, *args: object, **kwargs: object) -> object:
        """Invoke ``shard``'s table method in its worker and return the result."""
        ...

    def run_calls(
        self, calls: Sequence[Tuple[int, str, Tuple[object, ...]]]
    ) -> List[object]:
        """Fan out ``(shard, method, args)`` calls; results in input order."""
        ...

    def run_concurrent(
        self,
        batches: Sequence[Tuple[int, object, object, object, Optional[int], Optional[int]]],
    ) -> List[object]:
        """Fan out concurrent mixed batches; results in input order."""
        ...

    def query(self, shards: Sequence[int]) -> List["ShardQuery"]:
        """Cheap per-shard state summaries (len/buckets/migrating)."""
        ...

    def sync(self, into: Optional[List["SlabHash"]] = None) -> None:
        """Collect every worker-resident shard into the parent mirror."""
        ...

    def load_shard(self, shard: int, table: "SlabHash") -> None:
        """Ship ``table`` as shard ``shard``'s new worker-resident state."""
        ...

    def push(self, shards: Optional[List["SlabHash"]] = None) -> None:
        """Re-ship every mirror shard (write half of a maintenance barrier)."""
        ...

    def close(self) -> None:
        """Shut the workers down; further dispatches raise."""
        ...
