"""Real multiprocess shard parallelism for :class:`ShardedSlabHash`.

Every shard of a sharded engine is an independent table on its own
simulated device, so the engine's *modelled* time is already the slowest
shard's time — but until this module, the simulation itself still executed
all shards serially in one Python process.  :class:`ProcessShardExecutor`
closes that gap: each shard's state lives resident in a persistent worker
process (``multiprocessing`` **spawn** context, one worker per shard group),
and the engine dispatches per-shard sub-batches to the workers instead of
executing them inline.

Design:

* **State handoff via snapshots.**  A shard is shipped to its worker once,
  as the same compressed snapshot bytes :mod:`repro.persist.snapshot`
  writes to disk (:func:`~repro.persist.snapshot.table_to_bytes`), and then
  stays resident; restoring is bit-identical by the persistence layer's
  guarantee, so a worker-executed batch produces exactly the results and
  device-counter deltas the serial path would.
* **Array traffic per batch.**  Per-batch traffic is NumPy op/key/value
  arrays and result arrays over OS pipes; no table state moves per batch.
  Every reply carries the worker-side device-counter state, which the
  parent copies onto its local shard mirror — so ``engine.measure()`` and
  the service's per-batch ``measure_phase`` see exactly the counters a
  serial run would, without collecting shard state.
* **Sync on read, barrier on maintenance.**  Structural reads
  (``items()``, ``save()``, chain checks) collect worker snapshots back
  into the parent's mirror (in place, via
  :func:`~repro.persist.snapshot.adopt_table_state`, so long-lived
  references stay valid).  ``rebalance()`` barriers: collect, mutate in
  the parent, re-ship.  Workers pump ``migrate_step`` locally — a shard's
  incremental migration advances inside its worker exactly as it would
  inline.
* **Worker death is a fault site.**  ``shard:<i>.worker`` (see
  :mod:`repro.faults.plan`) kills the worker before a dispatch; a genuine
  worker death is detected the same way.  Both raise
  :class:`~repro.faults.WorkerCrashed`, which the service treats like an
  injected dirty failure: abort marker, immediate quarantine, restore from
  checkpoint + WAL tail, and a re-ship to a freshly spawned worker.
* **Crash-safe teardown.**  Workers are daemonic, an ``atexit``/finalizer
  hook terminates whatever :meth:`close` did not, and :meth:`close` is
  idempotent — a failed test cannot leak child processes into later jobs.

Restrictions (documented in docs/API.md): the worker-resident shards do not
carry the parent's :class:`~repro.faults.FaultPlan`, so worker-*internal*
sites (``shard:<i>.alloc.warp_allocate``, ``shard:<i>.migration.step``)
never fire in process mode; parent-side sites (``shard:<i>.execute``,
``wal.*``, ``service.restore``, ``shard:<i>.worker``) behave unchanged.
Mutating a shard object directly while an executor is attached is out of
contract — use the engine API, which dispatches.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import weakref
from types import TracebackType
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    TypedDict,
    cast,
)

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

    from repro.core.slab_hash import SlabHash

from repro.faults import FaultPlan, WorkerCrashed

__all__ = ["ProcessShardExecutor", "ShardQuery"]


class ShardQuery(TypedDict):
    """Cheap per-shard state summary served by the worker ``query`` command."""

    len: int
    num_buckets: int
    used_bytes: int
    migrating: bool

#: Seconds to wait for a worker to exit cleanly before terminating it.
_JOIN_TIMEOUT = 5.0

_CTX = multiprocessing.get_context("spawn")


def _worker_main(conn: Connection) -> None:
    """Worker process entry point: resident shard tables, command loop.

    Commands arrive as tuples; every reply is ``(status, payload,
    counters_dict, warp_counter, cpu_seconds)`` where ``counters_dict`` is
    the touched shard's device-counter state *after* the command (sent even
    on error — a batch that fails halfway has still charged events, exactly
    as it would have inline), ``warp_counter`` is the shard's warp-issue
    counter (mirrored for the same reason: *read* dispatches advance it
    worker-side without marking the parent mirror stale, and a later
    snapshot must still be bit-identical to a serial run's), and
    ``cpu_seconds`` is the worker-side ``time.process_time()`` consumed —
    the measured per-worker compute the parallel benchmark's critical-path
    metric sums.
    """
    from repro.gpusim.scheduler import WarpScheduler
    from repro.persist.snapshot import table_from_bytes, table_to_bytes

    tables: Dict[int, object] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "exit":
            break
        shard = message[1]
        started = time.process_time()
        status, payload = "ok", None
        try:
            kind = message[0]
            if kind == "load":
                tables[shard] = table_from_bytes(message[2])
            elif kind == "call":
                _, _, method, args, kwargs = message
                payload = getattr(tables[shard], method)(*args, **kwargs)
            elif kind == "concurrent":
                _, _, op_codes, keys, values, seed, wave_size = message
                scheduler = None if seed is None else WarpScheduler(seed=seed)
                payload = tables[shard].concurrent_batch(
                    op_codes, keys, values, scheduler=scheduler, wave_size=wave_size
                )
            elif kind == "query":
                table = tables[shard]
                payload = {
                    "len": len(table),
                    "num_buckets": table.num_buckets,
                    "used_bytes": table.used_bytes(),
                    "migrating": table.migration is not None,
                }
            elif kind == "collect":
                payload = table_to_bytes(tables[shard])
            else:
                raise ValueError(f"unknown worker command {kind!r}")
        except Exception as error:  # noqa: BLE001 - shipped back to the parent
            status, payload = "err", error
        counters = (
            tables[shard].device.counters.as_dict() if shard in tables else None
        )
        warp_counter = tables[shard]._warp_counter if shard in tables else None
        cpu = time.process_time() - started
        try:
            conn.send((status, payload, counters, warp_counter, cpu))
        except Exception:  # noqa: BLE001 - e.g. an unpicklable exception
            detail = f"{type(payload).__name__}: {payload}" if status == "err" else ""
            conn.send(
                ("err", RuntimeError(detail or "unserializable reply"),
                 counters, warp_counter, cpu)
            )


def _terminate_workers(
    procs: List[Optional[multiprocessing.process.BaseProcess]],
    conns: List[Optional["Connection"]],
) -> None:
    """Best-effort teardown shared by :meth:`close` and the exit finalizer."""
    for conn in conns:
        try:
            if conn is not None:
                conn.send(("exit",))
        except Exception:  # noqa: BLE001 - worker already gone
            pass
    for proc in procs:
        if proc is None:
            continue
        proc.join(timeout=_JOIN_TIMEOUT)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=_JOIN_TIMEOUT)
        if proc.is_alive():  # pragma: no cover - SIGTERM ignored
            proc.kill()
            proc.join(timeout=_JOIN_TIMEOUT)
    for conn in conns:
        try:
            if conn is not None:
                conn.close()
        except Exception:  # noqa: BLE001
            pass
    procs.clear()
    conns.clear()


class ProcessShardExecutor:
    """Persistent per-shard-group worker processes for a sharded engine.

    Parameters
    ----------
    shards:
        The engine's shard list (the *mirror*: parent-resident tables whose
        device counters this executor keeps fresh, and whose full state
        :meth:`sync` refreshes in place).  The list object must be stable;
        elements may be replaced (``install``) or adopted into.
    num_workers:
        Worker process count; shard ``i`` lives in worker ``i %
        num_workers``.  Defaults to one worker per shard.
    faults:
        Optional :class:`~repro.faults.FaultPlan`; the executor consults
        the ``shard:<i>.worker`` site before each dispatch and kills the
        target worker when it fires.
    """

    def __init__(
        self,
        shards: List["SlabHash"],
        num_workers: Optional[int] = None,
        *,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if not shards:
            raise ValueError("ProcessShardExecutor needs at least one shard")
        self._shards = shards
        self.num_workers = min(len(shards), num_workers or len(shards))
        if self.num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.faults = faults
        self._procs: List[Optional[multiprocessing.process.BaseProcess]] = [
            None for _ in range(self.num_workers)
        ]
        self._conns: List[Optional["Connection"]] = [None for _ in range(self.num_workers)]
        self._worker_cpu = [0.0 for _ in range(self.num_workers)]
        # Shards whose worker-resident state was lost in a crash and has not
        # been re-shipped: the next call/concurrent dispatch to each raises
        # WorkerCrashed exactly once, so every affected lane gets its own
        # crash signal even when one worker hosted several shards.  Reads
        # (collect/query) serve the respawned mirror state instead.
        self._lost: Set[int] = set()
        self._closed = False
        # Crash-safe teardown: daemonic workers die with the parent, and
        # this finalizer (also registered with atexit by weakref.finalize)
        # terminates them even when close() was never called.
        self._finalizer = weakref.finalize(
            self, _terminate_workers, self._procs, self._conns
        )
        self.start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _worker_of(self, shard: int) -> int:
        return shard % self.num_workers

    def _spawn(self, worker: int) -> None:
        from repro.persist.snapshot import table_to_bytes

        parent_conn, child_conn = _CTX.Pipe()
        proc = _CTX.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"slabhash-shard-worker-{worker}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[worker] = proc
        self._conns[worker] = parent_conn
        # Ship this worker's shards from the parent mirror.  At start the
        # mirror is authoritative; after a crash it is the best available
        # state and the service's restore path overwrites it immediately.
        for shard in range(len(self._shards)):
            if self._worker_of(shard) == worker:
                parent_conn.send(("load", shard, table_to_bytes(self._shards[shard])))
        for shard in range(len(self._shards)):
            if self._worker_of(shard) == worker:
                self._read_reply(worker, shard)

    def start(self) -> "ProcessShardExecutor":
        """Spawn any missing workers and ship their shards; idempotent."""
        if self._closed:
            raise RuntimeError("executor is closed")
        for worker in range(self.num_workers):
            if self._procs[worker] is None or not self._procs[worker].is_alive():
                self._spawn(worker)
        return self

    def close(self) -> None:
        """Terminate every worker; idempotent and safe after crashes."""
        if self._closed:
            return
        self._closed = True
        _terminate_workers(self._procs, self._conns)
        self._finalizer.detach()

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # Dispatch plumbing
    # ------------------------------------------------------------------ #

    def _crash(self, worker: int, shard: int, why: str) -> WorkerCrashed:
        proc = self._procs[worker]
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=_JOIN_TIMEOUT)
        self._procs[worker] = None
        if self._conns[worker] is not None:
            try:
                self._conns[worker].close()
            except Exception:  # noqa: BLE001
                pass
            self._conns[worker] = None
        # Every shard the dead worker hosted lost its resident state; the
        # raise below is shard ``shard``'s own crash signal, the rest fire
        # lazily from _send.
        self._lost.update(
            s for s in range(len(self._shards)) if self._worker_of(s) == worker
        )
        self._lost.discard(shard)
        return WorkerCrashed(f"shard worker {worker} (shard {shard}) died: {why}")

    def _send(self, shard: int, command: Tuple[object, ...]) -> int:
        """Fault-check, ensure the worker is live, send; returns the worker."""
        if self._closed:
            raise RuntimeError("executor is closed")
        worker = self._worker_of(shard)
        if command[0] in ("call", "concurrent") and shard in self._lost:
            # This shard's state died with its worker and nothing has been
            # re-shipped: executing against the respawned mirror copy would
            # silently serve stale state, so fail loudly (once per shard).
            self._lost.discard(shard)
            raise WorkerCrashed(
                f"shard {shard} lost its worker-resident state in a crash; "
                "restore and re-ship it (install/load_shard) before executing"
            )
        if self.faults is not None:
            action = self.faults.fire(f"shard:{shard}.worker")
            if action is not None:
                proc = self._procs[worker]
                if proc is not None and proc.is_alive():
                    proc.kill()  # hard kill: resident shard state is lost
                    proc.join(timeout=_JOIN_TIMEOUT)
                raise self._crash(worker, shard, "killed by fault plan")
        if self._procs[worker] is not None and not self._procs[worker].is_alive():
            # Genuine, not-yet-signalled death (OOM kill, segfault): the
            # worker's resident state is gone.  Signal it like any other
            # crash; the respawn below only covers already-signalled slots.
            raise self._crash(worker, shard, "worker found dead")
        if self._procs[worker] is None:
            self._spawn(worker)  # respawn from the parent mirror
        try:
            self._conns[worker].send(command)
        except (BrokenPipeError, EOFError, OSError) as error:
            raise self._crash(
                worker, shard, f"send failed ({type(error).__name__})"
            ) from error
        return worker

    def _read_reply(self, worker: int, shard: int) -> object:
        try:
            status, payload, counters, warp_counter, cpu = self._conns[worker].recv()
        except (EOFError, OSError) as error:
            raise self._crash(
                worker, shard, f"recv failed ({type(error).__name__})"
            ) from error
        self._worker_cpu[worker] += cpu
        if counters is not None:
            # Mirror the worker's authoritative counters so measure() and
            # measure_phase() in the parent see serial-identical deltas.
            device = self._shards[shard].device
            for name, value in counters.items():
                setattr(device.counters, name, value)
        if warp_counter is not None:
            # Reads advance the warp-issue counter worker-side without
            # marking the mirror stale; mirror it so a later snapshot of
            # the mirror stays bit-identical to a serial run's.
            self._shards[shard]._warp_counter = warp_counter
        if status == "err":
            raise payload
        return payload

    def _run(self, commands: Sequence[Tuple[int, Tuple[object, ...]]]) -> List[object]:
        """Dispatch ``(shard, command)`` pairs fan-out, collect in order.

        All commands are sent before any reply is read, so workers compute
        concurrently; replies are read in send order (each worker's pipe is
        FIFO).  On a send failure the remaining commands are not sent —
        matching the serial loop, which stops mutating at the first raise —
        but replies for everything already sent are still drained so the
        pipes stay consistent.  The first error (send or reply) is
        re-raised after the drain.
        """
        sent: List[Tuple[int, int]] = []
        first_error: Optional[BaseException] = None
        for shard, command in commands:
            try:
                sent.append((self._send(shard, command), shard))
            except Exception as error:  # noqa: BLE001
                first_error = error
                break
        results: List[object] = []
        for worker, shard in sent:
            try:
                results.append(self._read_reply(worker, shard))
            except Exception as error:  # noqa: BLE001
                if first_error is None:
                    first_error = error
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------ #
    # Shard operations
    # ------------------------------------------------------------------ #

    def call(self, shard: int, method: str, *args: object, **kwargs: object) -> object:
        """Invoke ``shard``'s table method in its worker and return the result."""
        return self._run([(shard, ("call", shard, method, args, kwargs))])[0]

    def run_calls(
        self, calls: Sequence[Tuple[int, str, Tuple[object, ...]]]
    ) -> List[object]:
        """Fan out ``(shard, method, args)`` calls; results in input order."""
        return self._run(
            [(shard, ("call", shard, method, args, {})) for shard, method, args in calls]
        )

    def run_concurrent(
        self,
        batches: Sequence[Tuple[int, object, object, object, Optional[int], Optional[int]]],
    ) -> List[object]:
        """Fan out concurrent mixed batches.

        Each entry is ``(shard, op_codes, keys, values, scheduler_seed,
        wave_size)``; the worker builds the
        :class:`~repro.gpusim.scheduler.WarpScheduler` from the seed locally
        (schedulers are deterministic functions of their seed, so this is
        bit-identical to passing the object).
        """
        return self._run(
            [
                (shard, ("concurrent", shard, op_codes, keys, values, seed, wave))
                for shard, op_codes, keys, values, seed, wave in batches
            ]
        )

    def query(self, shards: Sequence[int]) -> List[ShardQuery]:
        """Cheap per-shard state summaries (len/buckets/migrating)."""
        return cast(
            List[ShardQuery],
            self._run([(shard, ("query", shard)) for shard in shards]),
        )

    def sync(self, into: Optional[List["SlabHash"]] = None) -> None:
        """Collect every worker-resident shard into the parent mirror.

        State is adopted **in place** (same table objects), so references
        held by a service or by tests stay valid.  After a sync the mirror
        is bit-identical to the worker state.
        """
        from repro.persist.snapshot import adopt_table_state, table_from_bytes

        mirror = self._shards if into is None else into
        blobs = self._run(
            [(shard, ("collect", shard)) for shard in range(len(self._shards))]
        )
        for shard, data in enumerate(blobs):
            adopt_table_state(mirror[shard], table_from_bytes(data))

    def load_shard(self, shard: int, table: "SlabHash") -> None:
        """Ship ``table`` as shard ``shard``'s new worker-resident state.

        Respawns the worker first if it died — the restore path after a
        :class:`~repro.faults.WorkerCrashed` quarantine ends here.
        """
        from repro.persist.snapshot import table_to_bytes

        self._run([(shard, ("load", shard, table_to_bytes(table)))])
        self._lost.discard(shard)

    def push(self, shards: Optional[List["SlabHash"]] = None) -> None:
        """Re-ship every mirror shard (the write half of a maintenance barrier)."""
        from repro.persist.snapshot import table_to_bytes

        mirror = self._shards if shards is None else shards
        self._run(
            [
                (shard, ("load", shard, table_to_bytes(mirror[shard])))
                for shard in range(len(mirror))
            ]
        )
        self._lost.clear()

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #

    def worker_cpu_seconds(self) -> List[float]:
        """Measured CPU seconds each worker has consumed (``process_time``).

        The maximum over workers is the measured critical path of the work
        dispatched so far — what wall-clock would converge to given at
        least ``num_workers`` free cores (``benchmarks/bench_parallel.py``).
        """
        return list(self._worker_cpu)

    def reset_worker_cpu(self) -> None:
        self._worker_cpu = [0.0 for _ in range(self.num_workers)]

    def worker_pids(self) -> List[Optional[int]]:
        """Live worker PIDs (``None`` for a dead slot); teardown tests use this."""
        return [
            proc.pid if proc is not None and proc.is_alive() else None
            for proc in self._procs
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "live"
        return (
            f"ProcessShardExecutor(shards={len(self._shards)}, "
            f"workers={self.num_workers}, {state})"
        )
