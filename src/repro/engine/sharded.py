"""A sharded multi-table engine over independent :class:`SlabHash` shards.

The paper's table lives on one GPU and scales with the SMs of that device.
This engine models the next step: partition the key space across ``N``
independent slab hashes — each with its own simulated
:class:`~repro.gpusim.device.Device` and allocator, standing in for a group
of SMs or a whole extra GPU — and route operation streams between them with a
:class:`~repro.engine.router.ShardRouter`.

Because the hash-partition (and range-partition) policies send *every*
occurrence of a key to the same shard, the relative order of the operations
on any single key is preserved, and every bulk result is **identical** to
running the same stream through one unsharded table
(``tests/engine/test_sharded.py`` asserts this element by element).  A
``concurrent_batch`` is identical too whenever its outcome is
schedule-independent (no conflicting operations on the same key within the
batch); conflicting concurrent operations are resolved by *some* legal
schedule in both settings, but not necessarily the same one, exactly as on
real hardware.  What
changes is the performance model: shards execute concurrently, so the
engine's modelled time for a phase is the *slowest shard's* time rather than
the sum — :meth:`ShardedSlabHash.measure` returns an
:class:`~repro.engine.stats.EngineStats` with both views plus the merged
counters.

Shards can also execute concurrently *for real*: constructing the engine
with ``executor="process"`` hands each shard to a persistent worker process
(:class:`~repro.engine.parallel.ProcessShardExecutor`) and every engine
operation dispatches per-shard sub-batches to the workers instead of running
them inline.  Results, device counters, and migration/resize behavior are
bit-identical to the serial path (``tests/engine/test_parallel.py`` and the
proptest differential harness assert this); what changes is measured
wall-clock, which ``benchmarks/bench_parallel.py`` records next to the
modelled curve.  The parent keeps a *mirror* of every shard: counters are
refreshed on every dispatch, and full shard state is collected back
(in place, preserving object identity) whenever a structural read —
``items()``, ``save()``, the ``shards`` property — needs it.

The ``reproduce shard-sweep`` experiment
(:func:`repro.perf.figures.shard_sweep`) sweeps the shard count and reports
the resulting scaling efficiency on bulk and mixed concurrent workloads.
"""

from __future__ import annotations

import math
from types import TracebackType
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple, Type

if TYPE_CHECKING:
    from repro.engine.interfaces import ShardExecutor
    from repro.engine.parallel import ShardQuery

import numpy as np

from repro.core import constants as C
from repro.core.config import SlabAllocConfig
from repro.core.resize import LoadFactorPolicy, MigrationStepResult, ResizeResult
from repro.core.slab_hash import SlabHash
from repro.engine.router import ShardRouter
from repro.engine.stats import EngineStats
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import Device, DeviceSpec, TESLA_K40C
from repro.gpusim.scheduler import WarpScheduler

__all__ = ["MigrationInFlightError", "ShardedSlabHash"]

#: Seed offset between the router's hash draw and the shard tables' draws, so
#: shard choice and bucket choice are independent members of the family.
_SHARD_SEED_STRIDE = 101

#: Accepted values for the ``executor`` constructor knob.
_EXECUTORS = (None, "serial", "process")


class MigrationInFlightError(RuntimeError):
    """``rebalance(on_migrating="error")`` refused: migrations are in flight.

    Raised *before any shard is touched*, so a refused rebalance mutates
    nothing.  Pump the listed shards (``maybe_resize`` /
    ``migrate_step_shard``) or call ``rebalance(on_migrating="complete")``
    to have the rebalance finish them itself.
    """

    def __init__(self, shards: Sequence[int]) -> None:
        self.shards = list(shards)
        super().__init__(
            f"rebalance refused: shards {self.shards} have in-flight "
            "incremental migrations; pump them to completion first, or call "
            "rebalance(on_migrating='complete') to have rebalance finish them"
        )


class ShardedSlabHash:
    """N independent slab hashes behind a single key-partitioned front door.

    Parameters
    ----------
    num_shards:
        Number of shards (independent tables/devices).
    buckets_per_shard:
        Bucket count of each shard's slab hash.  With hash routing an
        N-shard engine with ``B`` buckets per shard behaves like one table
        with ``N * B`` buckets.
    policy:
        Routing policy (see :class:`~repro.engine.router.ShardRouter`):
        ``"hash"`` (default), ``"range"``, or ``"round-robin"`` (build-only).
    device_spec:
        Hardware model used for every shard's fresh device.
    key_value / unique_keys / light_alloc / alloc_config:
        Forwarded to each shard's :class:`SlabHash`.
    seed:
        Master seed; the router and each shard draw independent hash
        functions from it.
    backend:
        Execution backend for every shard (``"vectorized"`` or
        ``"reference"``; ``None`` picks the process default).  Shards route
        bulk batches — and unscheduled concurrent sub-batches — through
        their own backend paths, so the engine inherits the backend's speed
        and its counter-exactness guarantee unchanged.
    load_factor_policy:
        Optional :class:`~repro.core.resize.LoadFactorPolicy`, forwarded to
        every shard: each shard tracks its own beta and resizes itself
        independently (automatically after mutating batches when the
        policy's ``auto`` flag is set, or on :meth:`maybe_resize` when
        deferred).  :meth:`rebalance` additionally right-sizes unevenly
        loaded shards directly to the policy's target beta.  (Named to
        avoid clashing with ``policy``, the routing policy.)
    executor:
        ``None``/``"serial"`` (default) runs every shard inline.
        ``"process"`` attaches a
        :class:`~repro.engine.parallel.ProcessShardExecutor`: each shard
        lives resident in a worker process and engine calls dispatch
        per-shard work to the workers — bit-identical results and counters,
        real wall-clock concurrency.  See ``docs/API.md`` for restrictions
        (call :meth:`close` when done; mutate shards through the engine API
        only).
    executor_workers:
        Worker-process count for ``executor="process"`` (shard ``i`` lives
        in worker ``i % executor_workers``).  Defaults to one worker per
        shard.
    """

    def __init__(
        self,
        num_shards: int,
        buckets_per_shard: int,
        *,
        policy: str = "hash",
        device_spec: DeviceSpec = TESLA_K40C,
        key_value: bool = True,
        unique_keys: bool = True,
        light_alloc: bool = False,
        alloc_config: Optional[SlabAllocConfig] = None,
        seed: int = 0,
        backend: Optional[str] = None,
        load_factor_policy: Optional[LoadFactorPolicy] = None,
        executor: Optional[str] = None,
        executor_workers: Optional[int] = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.router = ShardRouter(num_shards, policy=policy, seed=seed)
        self._shards: List[SlabHash] = [
            SlabHash(
                buckets_per_shard,
                device=Device(device_spec),
                key_value=key_value,
                unique_keys=unique_keys,
                light_alloc=light_alloc,
                alloc_config=alloc_config,
                seed=seed + _SHARD_SEED_STRIDE * (shard + 1),
                backend=backend,
                policy=load_factor_policy,
            )
            for shard in range(num_shards)
        ]
        self.cost_model = CostModel(device_spec)
        self._ops_routed = np.zeros(num_shards, dtype=np.int64)
        self._executor: Optional["ShardExecutor"] = None
        self._stale = False
        self.attach_executor(executor, executor_workers)

    # ------------------------------------------------------------------ #
    # Sizing helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def for_utilization(
        cls,
        num_shards: int,
        num_elements: int,
        utilization: float,
        *,
        key_value: bool = True,
        **kwargs: object,
    ) -> "ShardedSlabHash":
        """Size each shard so the whole engine hits a target memory utilization.

        Hash routing spreads ``num_elements`` keys nearly evenly, so each
        shard is sized for its expected ``num_elements / num_shards`` share
        using the same Fig. 4c relation as the unsharded table.
        """
        share = max(1, math.ceil(num_elements / num_shards))
        buckets = SlabHash.buckets_for_utilization(share, utilization, key_value=key_value)
        return cls(num_shards, buckets, key_value=key_value, **kwargs)

    # ------------------------------------------------------------------ #
    # Process-executor plumbing
    # ------------------------------------------------------------------ #

    @property
    def shards(self) -> List[SlabHash]:
        """The shard tables — synced from the workers first in process mode.

        In process mode the worker-resident state is authoritative; reading
        this property collects it back into the parent mirror **in place**
        (existing shard objects keep their identity, so references held by a
        service or by tests stay valid).  Prefer :meth:`migrating_shards`,
        :meth:`shard_sizes` and friends for cheap summaries — they query the
        workers without moving shard state.
        """
        self._sync()
        return self._shards

    @shards.setter
    def shards(self, value: List[SlabHash]) -> None:
        if getattr(self, "_executor", None) is not None:
            raise RuntimeError(
                "cannot replace the shard list while a process executor is "
                "attached; use install_shard() or close() first"
            )
        self._shards = list(value)

    @property
    def process_executor(self) -> Optional["ShardExecutor"]:
        """The attached executor (today a :class:`ProcessShardExecutor`), or ``None`` (serial)."""
        return self._executor

    def attach_executor(
        self, executor: Optional[str], num_workers: Optional[int] = None
    ) -> "ShardedSlabHash":
        """Attach an execution mode; ``None``/``"serial"`` is a no-op.

        Restored engines come back serial (worker processes are not part of
        a snapshot), so a service that wants process execution re-attaches
        after :func:`repro.persist.recover`.  Attaching ships the current
        shard state to fresh workers; attaching when an executor is already
        live is an error (close it first).
        """
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        if executor != "process":
            return self
        if self._executor is not None:
            raise RuntimeError("a process executor is already attached")
        from repro.engine.parallel import ProcessShardExecutor

        self._executor = ProcessShardExecutor(self._shards, num_workers)
        self._stale = False
        return self

    def close(self) -> None:
        """Tear down worker processes; the engine degrades to serial.

        Best-effort: the final worker state is collected into the mirror
        when the workers are still healthy, so a closed engine continues
        serving serially from exactly where the workers left off.  Safe to
        call twice, and a no-op in serial mode.
        """
        if self._executor is None:
            return
        executor, self._executor = self._executor, None
        try:
            if self._stale and not executor.closed:
                executor.sync(self._shards)
                self._stale = False
        finally:
            executor.close()

    def __enter__(self) -> "ShardedSlabHash":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def _sync(self) -> None:
        """Collect worker shard state into the mirror if it is stale."""
        if self._executor is not None and self._stale:
            self._executor.sync(self._shards)
            self._stale = False

    def _queries(self) -> List["ShardQuery"]:
        return self._executor.query(range(self.num_shards))

    def install_shard(self, shard: int, table: SlabHash) -> None:
        """Replace one shard's table (the service's quarantine-restore hook).

        The mirror entry is swapped and, in process mode, the new state is
        shipped to the shard's worker — respawning it first if it died,
        which is exactly the path a :class:`~repro.faults.WorkerCrashed`
        restore takes.
        """
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range for {self.num_shards} shards")
        self._shards[shard] = table
        if self._executor is not None:
            self._executor.load_shard(shard, table)

    # ------------------------------------------------------------------ #
    # Routing plumbing
    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def num_buckets(self) -> int:
        """Total buckets across all shards."""
        if self._executor is not None and self._stale:
            return sum(q["num_buckets"] for q in self._queries())
        return sum(shard.num_buckets for shard in self._shards)

    @property
    def devices(self) -> List[Device]:
        """Per-shard devices; counters stay serial-identical in process mode
        because every worker reply mirrors its shard's counter state back."""
        return [shard.device for shard in self._shards]

    def _require_key_partitioning(self, operation: str) -> None:
        if not self.router.key_partitioning:
            raise ValueError(
                f"{operation} needs a key-partitioning routing policy "
                f"(hash or range); {self.router.policy!r} routes by stream "
                "position, so lookups could land on the wrong shard"
            )

    def _partition(self, keys: np.ndarray) -> List[np.ndarray]:
        parts = self.router.partition(keys)
        for shard, idx in enumerate(parts):
            self._ops_routed[shard] += idx.size
        return parts

    def admit_partition(self, keys: Sequence[int]) -> List[np.ndarray]:
        """Per-shard stream positions for ``keys``, with routing accounting.

        The service layer routes operations to per-shard logs at admission
        time and later executes each shard's batches through the shard's own
        bulk path; this hook gives it the router's partition *and* keeps the
        engine's per-shard operation accounting (used by :meth:`measure`)
        consistent with streams that went through :meth:`concurrent_batch` —
        including the deterministic WAL replay of such batches on recovery.
        """
        self._require_key_partitioning("admit_partition")
        return self._partition(np.asarray(keys, dtype=np.uint64))

    def admit_one(self, key: int) -> int:
        """Shard index for one admitted key (single-op :meth:`admit_partition`)."""
        self._require_key_partitioning("admit_one")
        shard = self.router.shard_of(key)
        self._ops_routed[shard] += 1
        return shard

    # ------------------------------------------------------------------ #
    # Bulk operations (mirror SlabHash's bulk API, shard by shard)
    # ------------------------------------------------------------------ #

    def bulk_build(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> None:
        """Build the engine by dynamically inserting every element (cf. SlabHash)."""
        self.bulk_insert(keys, values)

    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> None:
        """Route a batch of insertions to their shards and run each sub-batch."""
        keys = np.asarray(keys, dtype=np.uint64)
        values = None if values is None else np.asarray(values, dtype=np.int64)
        if (
            not self.router.key_partitioning
            and self._shards[0].config.unique_keys
            and np.unique(keys).size != keys.size
        ):
            # Round-robin would deal two occurrences of a key to different
            # shards, silently defeating REPLACE semantics.
            raise ValueError(
                "round-robin routing cannot uphold unique-key (REPLACE) "
                "semantics for batches with repeated keys; use the hash or "
                "range policy, or deduplicate the batch"
            )
        parts = self._partition(keys)
        if self._executor is not None:
            self._stale = True
            self._executor.run_calls(
                [
                    (shard, "bulk_insert", (keys[idx], None if values is None else values[idx]))
                    for shard, idx in enumerate(parts)
                    if idx.size
                ]
            )
            return
        for shard, idx in zip(self._shards, parts):
            if idx.size:
                shard.bulk_insert(keys[idx], None if values is None else values[idx])

    def bulk_search(self, queries: Sequence[int]) -> np.ndarray:
        """Search a batch; results are in query order, exactly as SlabHash returns them."""
        self._require_key_partitioning("bulk_search")
        queries = np.asarray(queries, dtype=np.uint64)
        results = np.full(len(queries), C.SEARCH_NOT_FOUND, dtype=np.uint32)
        parts = self._partition(queries)
        if self._executor is not None:
            calls, scatter = [], []
            for shard, idx in enumerate(parts):
                if idx.size:
                    calls.append((shard, "bulk_search", (queries[idx],)))
                    scatter.append(idx)
            for idx, found in zip(scatter, self._executor.run_calls(calls)):
                results[idx] = found
            return results
        for shard, idx in zip(self._shards, parts):
            if idx.size:
                results[idx] = shard.bulk_search(queries[idx])
        return results

    def bulk_delete(self, keys: Sequence[int]) -> np.ndarray:
        """Delete a batch; returns per-key removed counts in key order."""
        self._require_key_partitioning("bulk_delete")
        keys = np.asarray(keys, dtype=np.uint64)
        removed = np.zeros(len(keys), dtype=np.int64)
        parts = self._partition(keys)
        if self._executor is not None:
            self._stale = True
            calls, scatter = [], []
            for shard, idx in enumerate(parts):
                if idx.size:
                    calls.append((shard, "bulk_delete", (keys[idx],)))
                    scatter.append(idx)
            for idx, counts in zip(scatter, self._executor.run_calls(calls)):
                removed[idx] = counts
            return removed
        for shard, idx in zip(self._shards, parts):
            if idx.size:
                removed[idx] = shard.bulk_delete(keys[idx])
        return removed

    # ------------------------------------------------------------------ #
    # Concurrent mixed batches
    # ------------------------------------------------------------------ #

    def concurrent_batch(
        self,
        op_codes: Sequence[int],
        keys: Sequence[int],
        values: Optional[Sequence[int]] = None,
        *,
        scheduler_seed: Optional[int] = None,
        wave_size: Optional[int] = None,
    ) -> np.ndarray:
        """Run a mixed insert/search/delete batch across the shards.

        With ``scheduler_seed`` given, each shard executes its sub-stream
        under its own :class:`~repro.gpusim.scheduler.WarpScheduler` (seeded
        from ``scheduler_seed`` plus the shard index) — shards are
        independent devices, so there is no cross-shard interleaving to
        model.  Without it (the default) every shard drains its sub-stream
        on the deterministic phased schedule, which the vectorized backend
        runs on its concurrent fast path.  Results come back in stream order
        with SlabHash's conventions: found value for searches, 1/0 for
        deletions, 0 for insertions.
        """
        self._require_key_partitioning("concurrent_batch")
        op_codes = np.asarray(op_codes, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.uint64)
        if op_codes.shape != keys.shape:
            raise ValueError("op_codes and keys must have the same length")
        values = None if values is None else np.asarray(values, dtype=np.int64)
        results = np.zeros(len(keys), dtype=np.uint32)
        parts = self._partition(keys)
        if self._executor is not None:
            self._stale = True
            batches, scatter = [], []
            for number, idx in enumerate(parts):
                if not idx.size:
                    continue
                seed = None if scheduler_seed is None else scheduler_seed + number
                batches.append(
                    (
                        number,
                        op_codes[idx],
                        keys[idx],
                        None if values is None else values[idx],
                        seed,
                        wave_size,
                    )
                )
                scatter.append(idx)
            for idx, sub in zip(scatter, self._executor.run_concurrent(batches)):
                results[idx] = sub
            return results
        for number, (shard, idx) in enumerate(zip(self._shards, parts)):
            if not idx.size:
                continue
            scheduler = None
            if scheduler_seed is not None:
                scheduler = WarpScheduler(seed=scheduler_seed + number)
            results[idx] = shard.concurrent_batch(
                op_codes[idx],
                keys[idx],
                None if values is None else values[idx],
                scheduler=scheduler,
                wave_size=wave_size,
            )
        return results

    def execute_shard_batch(
        self,
        shard: int,
        op_codes: np.ndarray,
        keys: np.ndarray,
        values: Optional[np.ndarray],
        *,
        scheduler_seed: Optional[int] = None,
        wave_size: Optional[int] = None,
    ) -> np.ndarray:
        """Run one *pre-routed* concurrent batch on a single shard.

        The service's per-shard drain loops stage batches that are already
        partitioned; this hook executes one of them on the owning shard —
        inline in serial mode, dispatched to the shard's worker in process
        mode — with identical results and counters either way.  The
        scheduler is built from ``scheduler_seed`` locally on whichever side
        executes (schedulers are deterministic functions of their seed).
        """
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range for {self.num_shards} shards")
        if self._executor is not None:
            self._stale = True
            return self._executor.run_concurrent(
                [(shard, op_codes, keys, values, scheduler_seed, wave_size)]
            )[0]
        scheduler = None if scheduler_seed is None else WarpScheduler(seed=scheduler_seed)
        return self._shards[shard].concurrent_batch(
            op_codes, keys, values, scheduler=scheduler, wave_size=wave_size
        )

    # ------------------------------------------------------------------ #
    # Single-operation convenience API
    # ------------------------------------------------------------------ #

    def insert(self, key: int, value: Optional[int] = None) -> None:
        shard = self.router.shard_of(key)
        self._ops_routed[shard] += 1
        if self._executor is not None:
            self._stale = True
            self._executor.call(shard, "insert", key, value)
            return
        self._shards[shard].insert(key, value)

    def search(self, key: int) -> Optional[int]:
        self._require_key_partitioning("search")
        shard = self.router.shard_of(key)
        self._ops_routed[shard] += 1
        if self._executor is not None:
            return self._executor.call(shard, "search", key)
        return self._shards[shard].search(key)

    def __contains__(self, key: int) -> bool:
        return self.search(key) is not None

    def delete(self, key: int) -> bool:
        self._require_key_partitioning("delete")
        shard = self.router.shard_of(key)
        self._ops_routed[shard] += 1
        if self._executor is not None:
            self._stale = True
            return self._executor.call(shard, "delete", key)
        return self._shards[shard].delete(key)

    def search_all(self, key: int) -> List[int]:
        """Every value stored under ``key`` (duplicates mode; cf. SlabHash)."""
        self._require_key_partitioning("search_all")
        shard = self.router.shard_of(key)
        self._ops_routed[shard] += 1
        if self._executor is not None:
            return self._executor.call(shard, "search_all", key)
        return self._shards[shard].search_all(key)

    def delete_all(self, key: int) -> int:
        """Delete every occurrence of ``key``; returns the number removed."""
        self._require_key_partitioning("delete_all")
        shard = self.router.shard_of(key)
        self._ops_routed[shard] += 1
        if self._executor is not None:
            self._stale = True
            return self._executor.call(shard, "delete_all", key)
        return self._shards[shard].delete_all(key)

    # ------------------------------------------------------------------ #
    # Online resizing and rebalancing
    # ------------------------------------------------------------------ #

    def resize_shard(
        self,
        shard: int,
        num_buckets: int,
        *,
        trigger: str = "manual",
        incremental: bool = False,
        step_buckets: Optional[int] = None,
    ) -> Optional[ResizeResult]:
        """Resize one shard into ``num_buckets`` buckets (items stay put).

        Routing is untouched — a shard resize only changes that shard's
        bucket array — so every key remains reachable and the engine's
        totals (:meth:`__len__`, :meth:`shard_sizes`, :meth:`items`) are
        unchanged by construction.

        With ``incremental=True`` the shard's migration is *begun* rather
        than run to completion: the call returns ``None`` (or a counted
        no-op :class:`ResizeResult` when the shard is already that size)
        and subsequent batches / :meth:`maybe_resize` /
        :meth:`migrate_step_shard` calls advance it a bounded number of
        buckets at a time.  Shards migrate independently — beginning a
        migration on one shard never blocks the others.
        """
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range for {self.num_shards} shards")
        if self._executor is not None:
            self._stale = True
            if incremental:
                return self._executor.call(
                    shard, "begin_resize", num_buckets,
                    trigger=trigger, step_buckets=step_buckets,
                )
            return self._executor.call(shard, "resize", num_buckets, trigger=trigger)
        if incremental:
            return self._shards[shard].begin_resize(
                num_buckets, trigger=trigger, step_buckets=step_buckets
            )
        return self._shards[shard].resize(num_buckets, trigger=trigger)

    def migrate_step_shard(
        self, shard: int, max_buckets: Optional[int] = None
    ) -> MigrationStepResult:
        """Advance one shard's in-flight migration by at most ``max_buckets``."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range for {self.num_shards} shards")
        if self._executor is not None:
            self._stale = True
            return self._executor.call(shard, "migrate_step", max_buckets)
        return self._shards[shard].migrate_step(max_buckets)

    def migrating_shards(self) -> List[int]:
        """Indices of shards with a migration currently in flight."""
        if self._executor is not None and self._stale:
            return [i for i, q in enumerate(self._queries()) if q["migrating"]]
        return [i for i, shard in enumerate(self._shards) if shard.migration is not None]

    def maybe_resize(self) -> List[ResizeResult]:
        """Pump each shard's migration / load-factor policy (see SlabHash).

        Shards are pumped independently: a shard mid-migration advances by
        a bounded number of steps while its neighbours follow their own
        policies, so one shard's long migration never delays another's.
        """
        if self._executor is not None:
            self._stale = True
            results: List[ResizeResult] = []
            for performed in self._executor.run_calls(
                [(shard, "maybe_resize", ()) for shard in range(self.num_shards)]
            ):
                results.extend(performed)
            return results
        results = []
        for shard in self._shards:
            results.extend(shard.maybe_resize())
        return results

    def maybe_resize_shard(self, shard: int) -> List[ResizeResult]:
        """Pump one shard's migration / load-factor policy.

        The per-shard sibling of :meth:`maybe_resize`: the service calls it
        between a shard's batches so one lane's maintenance never touches —
        or, in process mode, never round-trips through — the other shards.
        """
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range for {self.num_shards} shards")
        if self._executor is not None:
            self._stale = True
            return self._executor.call(shard, "maybe_resize")
        return self._shards[shard].maybe_resize()

    def rebalance(
        self,
        load_factor_policy: Optional[LoadFactorPolicy] = None,
        *,
        on_migrating: str = "complete",
    ) -> List[ResizeResult]:
        """Right-size unevenly loaded shards to the policy's target beta.

        Hash routing keeps shard sizes *nearly* equal, but skew (or a range
        policy over a skewed key space) can leave shards with very different
        betas even when each is individually inside the band.  Rebalancing
        resizes every shard whose bucket count is more than the policy's
        hysteresis away from the target for its current contents.

        Uses ``load_factor_policy`` if given, else each shard's own policy;
        raises when neither exists.  Returns the performed per-shard resizes.

        Incremental policies (``LoadFactorPolicy.incremental``) *begin* a
        per-shard migration instead of rebuilding — each shard migrates
        independently as its own batches and :meth:`maybe_resize` calls pump
        it.

        A shard with a migration already in flight is handled per
        ``on_migrating``: ``"complete"`` (default) pumps that migration to
        completion — appending its :class:`ResizeResult` — and *then*
        retargets the shard from its settled state; ``"error"`` refuses up
        front with :class:`MigrationInFlightError` before touching any
        shard.  Rebalance never retargets from a half-migrated bucket view.

        In process mode rebalance is a barrier: worker shard state is
        collected into the parent, rebalanced there, and re-shipped.

        Failure semantics: shards are independent devices with independent
        allocators, so one shard's failed migration (e.g. allocator
        exhaustion) must not starve the others of maintenance.  A failing
        shard is restored unchanged — ``resize_table``'s strong guarantee
        covers its bucket array, chains and allocator occupancy, and a
        failed incremental step leaves the watermark where it was — the
        remaining shards still get their rebalance attempt, and the first
        error is re-raised afterwards.
        """
        if on_migrating not in ("complete", "error"):
            raise ValueError(
                f"on_migrating must be 'complete' or 'error', got {on_migrating!r}"
            )
        if self._executor is not None:
            self._sync()
            self._stale = True
            try:
                results = self._rebalance_mirror(load_factor_policy, on_migrating)
            finally:
                # Serial-equivalent even on error: shards mutated before the
                # failure stay mutated, so ship whatever the mirror holds.
                self._executor.push(self._shards)
                self._stale = False
            return results
        return self._rebalance_mirror(load_factor_policy, on_migrating)

    def _rebalance_mirror(
        self, load_factor_policy: Optional[LoadFactorPolicy], on_migrating: str
    ) -> List[ResizeResult]:
        if on_migrating == "error":
            migrating = [
                i for i, shard in enumerate(self._shards) if shard.migration is not None
            ]
            if migrating:
                raise MigrationInFlightError(migrating)
        results: List[ResizeResult] = []
        first_error: Optional[Exception] = None
        for shard in self._shards:
            pol = load_factor_policy or shard.policy
            if pol is None:
                raise ValueError(
                    "rebalance needs a LoadFactorPolicy: pass one, or construct "
                    "the engine with load_factor_policy="
                )
            try:
                while shard.migration is not None:
                    outcome = shard.migrate_step()
                    if outcome.result is not None:
                        results.append(outcome.result)
                target = pol.target_buckets(len(shard), shard.config.elements_per_slab)
                if abs(target - shard.num_buckets) <= pol.hysteresis * shard.num_buckets:
                    continue
                if pol.incremental:
                    performed = shard.begin_resize(
                        target,
                        trigger="rebalance",
                        step_buckets=pol.migration_step_buckets,
                    )
                else:
                    performed = shard.resize(target, trigger="rebalance")
                if performed is not None:
                    results.append(performed)
            except Exception as error:  # noqa: BLE001 - shard restored; try the rest
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------ #
    # Durable snapshots (see repro.persist)
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> str:
        """Write a snapshot directory (manifest + one file per shard) to ``path``.

        Convenience hook for :func:`repro.persist.save`; restoring yields a
        bit-identical engine (per-shard items, chains, allocator occupancy,
        device counters, router draw and routing accounting).  In process
        mode this is a barrier: worker shard state is collected first.
        """
        from repro.persist.snapshot import save as _save

        return _save(self, path)

    @classmethod
    def load(cls, path: str) -> "ShardedSlabHash":
        """Restore an engine from a snapshot directory written by :meth:`save`.

        Restored engines are serial; pass the result through
        :meth:`attach_executor` to resume process execution.
        """
        from repro.persist.snapshot import load as _load

        engine = _load(path)
        if not isinstance(engine, cls):
            raise TypeError(f"{path} holds a {type(engine).__name__}, not a {cls.__name__}")
        return engine

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #

    def measure(
        self,
        fn: Callable[[], object],
        *,
        scale_to_ops: Optional[int] = None,
        label: str = "",
    ) -> EngineStats:
        """Run ``fn`` (engine calls) and merge the per-shard events it caused.

        The number of operations each shard handled is taken from the
        router's accounting, so ``fn`` should drive this engine rather than
        the shards directly.  Counterpart of
        :func:`repro.perf.metrics.measure_phase` for multi-device phases.
        Maintenance phases that route no operations (``flush``,
        :meth:`rebalance`, :meth:`maybe_resize`) are measurable too: their
        migration events are merged and priced with ``num_ops == 0``.
        Works unchanged in process mode — every dispatch mirrors the
        worker-side counters back onto :attr:`devices`.
        """
        before_counters = [device.snapshot() for device in self.devices]
        before_ops = self._ops_routed.copy()
        fn()
        events = [
            device.counters.diff(snap)
            for device, snap in zip(self.devices, before_counters)
        ]
        ops_per_shard = (self._ops_routed - before_ops).tolist()
        return EngineStats.from_shard_events(
            events,
            ops_per_shard,
            cost_model=self.cost_model,
            scale_to_ops=scale_to_ops,
            label=label,
        )

    # ------------------------------------------------------------------ #
    # Aggregate maintenance and introspection
    # ------------------------------------------------------------------ #

    def flush(self) -> None:
        """Compact every bucket of every shard and release empty slabs."""
        if self._executor is not None:
            self._stale = True
            self._executor.run_calls(
                [(shard, "flush", ()) for shard in range(self.num_shards)]
            )
            return
        for shard in self._shards:
            shard.flush()

    def __len__(self) -> int:
        if self._executor is not None and self._stale:
            return sum(q["len"] for q in self._queries())
        return sum(len(shard) for shard in self._shards)

    def shard_sizes(self) -> np.ndarray:
        """Stored element count per shard (load-balance diagnostics)."""
        if self._executor is not None and self._stale:
            return np.array([q["len"] for q in self._queries()], dtype=np.int64)
        return np.array([len(shard) for shard in self._shards], dtype=np.int64)

    def used_bytes(self) -> int:
        if self._executor is not None and self._stale:
            return sum(q["used_bytes"] for q in self._queries())
        return sum(shard.used_bytes() for shard in self._shards)

    def memory_utilization(self) -> float:
        """Stored data bytes over total slab bytes, across all shards."""
        if self._executor is not None and self._stale:
            queries = self._queries()
            stored = sum(
                q["len"] * shard.config.element_bytes
                for q, shard in zip(queries, self._shards)
            )
            return stored / sum(q["used_bytes"] for q in queries)
        stored = sum(
            len(shard) * shard.config.element_bytes for shard in self._shards
        )
        return stored / self.used_bytes()

    def items(self) -> List[Tuple[int, Optional[int]]]:
        """All stored (key, value) pairs, shard by shard."""
        out: List[Tuple[int, Optional[int]]] = []
        for shard in self.shards:
            out.extend(shard.items())
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "process" if self._executor is not None else "serial"
        return (
            f"ShardedSlabHash(shards={self.num_shards}, "
            f"policy={self.router.policy!r}, buckets={self.num_buckets}, "
            f"elements={len(self)}, executor={mode!r})"
        )
