"""Command-line interface for regenerating the paper's experiments.

Usage (after installation, or with ``PYTHONPATH=src``)::

    python -m repro list                    # show every reproducible experiment
    python -m repro reproduce fig4a         # regenerate one figure, print its table
    python -m repro reproduce all --scale 0.5 --out results/
    python -m repro info                    # device model and calibration summary
    python -m repro snapshot out.npz --elements 8192   # durable snapshot demo
    python -m repro recover out.npz --wal ops.wal      # restore + replay a WAL
    python -m repro service-health --chaos-seed 7      # live-service health counters

Experiment ids (the single source of truth is the :data:`EXPERIMENTS`
registry below; ``python -m repro list`` prints the same table)::

    fig4a        bulk build rate vs memory utilization
    fig4b        bulk search rate vs memory utilization
    fig4c        memory utilization vs average slab count
    fig5a        build rate vs number of elements
    fig5b        search rate vs number of elements
    fig6         incremental batched insertion vs rebuild-from-scratch
    fig7a        concurrent mixed-operation rate vs utilization
    fig7b        slab hash vs Misra & Chaudhuri's lock-free hash table
    allocators   SlabAlloc vs Halloc vs CUDA malloc
    light        SlabAlloc vs SlabAlloc-light ablation
    gfsl         analytic GFSL comparison
    wcws         WCWS vs per-thread processing ablation
    slabsize     slab-size design-choice ablation
    shard-sweep  sharded multi-table engine scaling (1..16 shards)
    resize-sweep online resizing under churn vs fixed-bucket tables

``--scale`` multiplies the default (scaled-down) simulation sizes: 1.0 is the
benchmark default, smaller values are faster smoke runs, larger values tighten
the statistics at the cost of runtime.  See docs/EXPERIMENTS.md for how the
modelled numbers relate to the paper's K40c measurements.

``--backend`` selects the execution backend for every table the experiments
build: ``vectorized`` (default; the NumPy fast path for bulk operations and
unscheduled concurrent batches) or ``reference`` (the per-warp generator
schedule).  Both produce identical device counters — and therefore identical
tables — the flag only changes the host-side wall-clock time; see
docs/PERFORMANCE.md.  (Scheduler-interleaved concurrent runs, e.g. fig7a/b,
always execute the reference generators on either backend.)
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Awaitable, Callable, Dict, List, Optional, TextIO, Tuple

from repro.core.bulk_exec import BACKENDS
from repro.gpusim.device import TESLA_K40C
from repro.perf import figures
from repro.perf.harness import FigureResult, execution_backend
from repro.perf.report import PAPER_REFERENCE, format_figure, format_table

__all__ = ["EXPERIMENTS", "main", "build_parser"]


def _scaled(base: int, scale: float, minimum: int = 256) -> int:
    return max(minimum, int(base * scale))


#: Registry: experiment id -> (description, driver taking a scale factor).
EXPERIMENTS: Dict[str, Tuple[str, Callable[[float], FigureResult]]] = {
    "fig4a": (
        "Bulk build rate vs memory utilization (paper Fig. 4a)",
        lambda scale: figures.figure_4a(sim_elements=_scaled(2**13, scale)),
    ),
    "fig4b": (
        "Bulk search rate vs memory utilization (paper Fig. 4b)",
        lambda scale: figures.figure_4b(sim_elements=_scaled(2**13, scale)),
    ),
    "fig4c": (
        "Memory utilization vs average slab count (paper Fig. 4c)",
        lambda scale: figures.figure_4c(sim_elements=_scaled(2**13, scale)),
    ),
    "fig5a": (
        "Build rate vs number of elements (paper Fig. 5a)",
        lambda scale: figures.figure_5a(sim_elements=_scaled(2**12, scale)),
    ),
    "fig5b": (
        "Search rate vs number of elements (paper Fig. 5b)",
        lambda scale: figures.figure_5b(sim_elements=_scaled(2**12, scale)),
    ),
    "fig6": (
        "Incremental batched insertion vs rebuild-from-scratch (paper Fig. 6)",
        lambda scale: figures.figure_6(
            total_elements=_scaled(2**14, scale, minimum=1024),
            batch_sizes=(
                _scaled(256, scale, 32),
                _scaled(512, scale, 64),
                _scaled(1024, scale, 128),
            ),
        ),
    ),
    "fig7a": (
        "Concurrent mixed-operation rate vs utilization (paper Fig. 7a)",
        lambda scale: figures.figure_7a(sim_elements=_scaled(2**12, scale)),
    ),
    "fig7b": (
        "Slab hash vs Misra & Chaudhuri's lock-free hash table (paper Fig. 7b)",
        lambda scale: figures.figure_7b(
            num_operations=_scaled(2**12, scale), initial_elements=_scaled(2**12, scale)
        ),
    ),
    "allocators": (
        "SlabAlloc vs Halloc vs CUDA malloc under the WCWS pattern (paper Sec. V)",
        lambda scale: figures.allocator_comparison(sim_allocations=_scaled(2**13, scale)),
    ),
    "light": (
        "SlabAlloc vs SlabAlloc-light on bulk searches (paper Sec. V)",
        lambda scale: figures.slaballoc_light_ablation(sim_elements=_scaled(2**13, scale)),
    ),
    "gfsl": (
        "Analytic GFSL comparison (paper Sec. VI-C)",
        lambda scale: figures.gfsl_comparison(),
    ),
    "wcws": (
        "WCWS vs per-thread processing ablation (paper Sec. IV-A)",
        lambda scale: figures.wcws_vs_per_thread(sim_elements=_scaled(2**13, scale)),
    ),
    "slabsize": (
        "Slab-size design-choice ablation (paper Sec. IV-B)",
        lambda scale: figures.slab_size_ablation(),
    ),
    "shard-sweep": (
        "Sharded multi-table engine: throughput scaling over 1..16 shards",
        lambda scale: figures.shard_sweep(sim_elements=_scaled(2**13, scale)),
    ),
    "resize-sweep": (
        "Online resizing under a churn workload vs fixed-bucket tables",
        lambda scale: figures.resize_sweep(sim_elements=_scaled(2**12, scale, minimum=512)),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'A Dynamic Hash Table for the GPU' (IPDPS 2018).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list every reproducible experiment")
    sub.add_parser("info", help="show the modelled device and calibration reference points")

    run = sub.add_parser("reproduce", help="run one experiment (or 'all') and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"],
                     help="experiment id (see 'repro list'), or 'all'")
    run.add_argument("--scale", type=float, default=1.0,
                     help="multiplier on the default simulation sizes (default 1.0)")
    run.add_argument("--out", type=str, default=None,
                     help="directory to write the resulting tables into")
    run.add_argument("--backend", choices=list(BACKENDS), default="vectorized",
                     help="execution backend for every table: bulk ops and "
                          "unscheduled concurrent batches (identical results; "
                          "vectorized is much faster)")

    snap = sub.add_parser(
        "snapshot",
        help="build a demo table (or sharded engine) and write a durable snapshot",
    )
    snap.add_argument("out", help="snapshot path (a file for 1 shard, a directory otherwise)")
    snap.add_argument("--elements", type=int, default=8192,
                      help="elements to build before snapshotting (default %(default)s)")
    snap.add_argument("--shards", type=int, default=1,
                      help="1 builds a SlabHash, >1 a ShardedSlabHash (default %(default)s)")
    snap.add_argument("--seed", type=int, default=1, help="workload/table seed")
    snap.add_argument("--backend", choices=list(BACKENDS), default="vectorized",
                      help="execution backend stored in the snapshot")

    rec = sub.add_parser(
        "recover",
        help="restore a snapshot, optionally replaying a write-ahead log tail",
    )
    rec.add_argument("snapshot", help="path written by 'repro snapshot' or persist.save()")
    rec.add_argument("--wal", default=None,
                     help="write-ahead log whose complete records are replayed "
                          "(a torn final record is discarded)")

    health = sub.add_parser(
        "service-health",
        help="run a short live-service burst (optionally under injected "
             "faults) and print its health and degradation counters",
    )
    health.add_argument("--ops", type=int, default=20000,
                        help="insertions to push through the service (default %(default)s)")
    health.add_argument("--shards", type=int, default=2,
                        help="shards in the backing engine (default %(default)s)")
    health.add_argument("--seed", type=int, default=1, help="workload/table seed")
    health.add_argument("--chaos-seed", type=int, default=None,
                        help="inject a seeded random FaultPlan over the "
                             "execute and allocator sites (docs/FAULTS.md); "
                             "omitted = healthy run")
    health.add_argument("--fault-rate", type=float, default=0.05,
                        help="per-occurrence injection probability when "
                             "--chaos-seed is set (default %(default)s)")
    health.add_argument("--executor", choices=["serial", "process"], default="serial",
                        help="shard execution mode: 'process' hands each shard "
                             "to a persistent worker process and runs batches "
                             "there (bit-identical results; docs/API.md)")
    health.add_argument("--workers", type=int, default=None,
                        help="worker processes with --executor process "
                             "(default: one per shard)")

    lint = sub.add_parser(
        "lint",
        help="run the repo's determinism/concurrency/typing lints "
             "(docs/ANALYSIS.md)",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: the "
                           "whole repro package)")
    lint.add_argument("--select", action="append", default=None, metavar="RULE",
                      help="run only this rule id (repeatable); see --list-rules")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog (id, scope, rationale) and exit")
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      help="violation output format (default %(default)s)")
    return parser


def _run_one(name: str, scale: float, out_dir: Optional[str], stream: TextIO) -> FigureResult:
    description, driver = EXPERIMENTS[name]
    start = time.perf_counter()
    result = driver(scale)
    elapsed = time.perf_counter() - start
    text = format_figure(result)
    stream.write(f"\n# {name}: {description}  [{elapsed:.1f}s]\n{text}\n")
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        with open(os.path.join(out_dir, f"{name}.txt"), "w", encoding="utf-8") as handle:
            handle.write(text)
    return result


def main(argv: Optional[List[str]] = None, stream: Optional[TextIO] = None) -> int:
    stream = stream or sys.stdout
    args = build_parser().parse_args(argv)

    if args.command == "list":
        rows = [[name, description] for name, (description, _) in sorted(EXPERIMENTS.items())]
        stream.write(format_table(["experiment", "description"], rows) + "\n")
        return 0

    if args.command == "info":
        spec = TESLA_K40C
        rows = [
            ["device", spec.name],
            ["SMs / warp size", f"{spec.num_sms} / {spec.warp_size}"],
            ["DRAM bandwidth", f"{spec.dram_bandwidth / 1e9:.0f} GB/s"],
            ["L2 cache", f"{spec.l2_cache_bytes // 1024} KiB"],
            ["paper peak updates", f"{PAPER_REFERENCE['slabhash_peak_updates_mops']:.0f} M/s"],
            ["paper peak searches", f"{PAPER_REFERENCE['slabhash_peak_searches_mops']:.0f} M/s"],
            ["paper SlabAlloc rate", f"{PAPER_REFERENCE['slaballoc_rate_mops']:.0f} M/s"],
            ["paper max utilization", f"{PAPER_REFERENCE['slabhash_max_utilization']:.0%}"],
        ]
        stream.write(format_table(["quantity", "value"], rows) + "\n")
        return 0

    if args.command == "snapshot":
        return _cmd_snapshot(args, stream)

    if args.command == "recover":
        return _cmd_recover(args, stream)

    if args.command == "service-health":
        return _cmd_service_health(args, stream)

    if args.command == "lint":
        return _cmd_lint(args, stream)

    # command == "reproduce"
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    with execution_backend(args.backend):
        for name in names:
            _run_one(name, args.scale, args.out, stream)
    return 0


def _snapshot_size_bytes(path: str) -> int:
    if os.path.isdir(path):
        return sum(
            os.path.getsize(os.path.join(path, name)) for name in os.listdir(path)
        )
    return os.path.getsize(path)


def _cmd_snapshot(args: argparse.Namespace, stream: TextIO) -> int:
    from repro.core.slab_hash import SlabHash
    from repro.engine.sharded import ShardedSlabHash
    from repro.persist import load, save
    from repro.workloads.generators import unique_random_keys, values_for_keys

    keys = unique_random_keys(args.elements, seed=args.seed)
    values = values_for_keys(keys)
    buckets = SlabHash.buckets_for_beta(max(1, args.elements // max(1, args.shards)), 0.6)
    if args.shards > 1:
        table = ShardedSlabHash(args.shards, buckets, seed=args.seed, backend=args.backend)
    else:
        table = SlabHash(buckets, seed=args.seed, backend=args.backend)
    table.bulk_build(keys, values)
    save(table, args.out)
    restored = load(args.out)
    verified = restored.items() == table.items()
    rows = [
        ["snapshot", args.out],
        ["kind", "sharded engine" if args.shards > 1 else "single table"],
        ["elements", str(len(table))],
        ["buckets", str(table.num_buckets)],
        ["shards", str(args.shards)],
        ["bytes", str(_snapshot_size_bytes(args.out))],
        ["round-trip verified", "yes" if verified else "NO — items diverged"],
    ]
    stream.write(format_table(["quantity", "value"], rows) + "\n")
    return 0 if verified else 1


def _cmd_recover(args: argparse.Namespace, stream: TextIO) -> int:
    from repro.engine.sharded import ShardedSlabHash
    from repro.persist import recover

    engine, report = recover(args.snapshot, args.wal)
    sharded = isinstance(engine, ShardedSlabHash)
    rows = [
        ["snapshot", report.snapshot_path],
        ["wal", report.wal_path or "(none)"],
        ["records replayed", str(report.records_replayed)],
        ["operations replayed", str(report.ops_replayed)],
        ["torn tail discarded", "yes" if report.torn_tail else "no"],
        ["kind", "sharded engine" if sharded else "single table"],
        ["elements", str(len(engine))],
        ["buckets", str(engine.num_buckets)],
    ]
    stream.write(format_table(["quantity", "value"], rows) + "\n")
    return 0


def _cmd_lint(args: argparse.Namespace, stream: TextIO) -> int:
    import json

    from repro.analysis import RULE_CLASSES, default_rules, lint_paths

    if args.list_rules:
        rows = []
        for cls in RULE_CLASSES:
            scope = ", ".join(cls.dirs) if cls.dirs else "repro/ (all)"
            if cls.exclude_dirs:
                scope += f" except {', '.join(cls.exclude_dirs)}"
            rows.append([cls.id, scope, cls.title])
        stream.write(format_table(["rule", "scope", "checks that"], rows) + "\n")
        return 0

    report = lint_paths(
        args.paths or None,
        rules=default_rules(args.select) if args.select else None,
    )
    if args.format == "json":
        payload = {
            "ok": report.ok,
            "files_checked": report.files_checked,
            "rules_run": list(report.rules_run),
            "violations": [
                {
                    "rule": v.rule,
                    "path": v.rel,
                    "line": v.line,
                    "col": v.col,
                    "message": v.message,
                }
                for v in report.violations
            ],
        }
        stream.write(json.dumps(payload, indent=2) + "\n")
    else:
        stream.write(report.format() + "\n")
    return 0 if report.ok else 1


def _cmd_service_health(args: argparse.Namespace, stream: TextIO) -> int:
    import asyncio
    import random as pyrandom

    import numpy as np

    from repro.core import constants as C
    from repro.engine.sharded import ShardedSlabHash
    from repro.faults import FaultAction, FaultPlan, InjectedFault
    from repro.service import (
        LANE_OPEN,
        ServiceConfig,
        ServiceError,
        SlabHashService,
        retry_with_backoff,
    )
    from repro.workloads.generators import unique_random_keys, values_for_keys

    plan = None
    if args.chaos_seed is not None:
        sites = []
        for shard in range(args.shards):
            sites.append((f"shard:{shard}.execute", FaultAction(exc="batch")))
            sites.append(
                (f"shard:{shard}.alloc.warp_allocate", FaultAction(exc="alloc"))
            )
            if args.executor == "process":
                # With the process executor the interesting failure is a
                # worker dying mid-traffic, not an in-process batch fault.
                sites.append((f"shard:{shard}.worker", FaultAction(exc="worker")))
        plan = FaultPlan.random(args.chaos_seed, sites, rate=args.fault_rate)

    engine = ShardedSlabHash(max(1, args.shards), 64, seed=args.seed)
    config = ServiceConfig(
        max_batch_size=256,
        max_delay=0.001,
        max_pending_per_shard=4096,
        breaker_threshold=2,
        executor=args.executor if args.executor != "serial" else None,
        executor_workers=args.workers,
    )
    service = SlabHashService(engine, config=config, faults=plan)

    keys = unique_random_keys(args.ops, seed=args.seed)
    values = values_for_keys(keys)
    dropped = 0

    async def run() -> None:
        nonlocal dropped
        async with service:
            chunk = 512
            for start in range(0, len(keys), chunk):
                ops = np.full(len(keys[start : start + chunk]), C.OP_INSERT, dtype=np.int64)

                def admit(s: int = start, ops: np.ndarray = ops) -> Awaitable[np.ndarray]:
                    return service.submit_many(
                        ops, keys[s : s + chunk], values[s : s + chunk]
                    )

                try:
                    await retry_with_backoff(
                        admit,
                        retries=20,
                        base_delay=0.001,
                        rng=pyrandom.Random(args.seed + start),
                    )
                except (InjectedFault, ServiceError):
                    dropped += len(ops)  # degraded: the counters record why
            while service._restore_tasks:
                await asyncio.sleep(0.001)

    try:
        asyncio.run(run())
    finally:
        engine.close()  # tears down process-executor workers; serial no-op

    stats = service.stats().as_dict()
    healthy = all(state != LANE_OPEN for state in service.lane_states)
    rows = [
        ["verdict", "healthy" if healthy else "DEGRADED — lane(s) still open"],
        ["ops enqueued", str(stats["ops_enqueued"])],
        ["ops completed", str(stats["ops_completed"])],
        ["ops failed", str(stats["ops_failed"])],
        ["ops rejected (backpressure/quarantine)", str(stats["ops_rejected"])],
        ["ops expired (deadline)", str(stats["ops_expired"])],
        ["admissions dropped after retries", str(dropped)],
        ["breaker trips", str(stats["breaker_trips"])],
        ["shard restores", str(stats["shard_restores"])],
        ["wal rollbacks", str(stats["wal_rollbacks"])],
        ["batches aborted", str(stats["batches_aborted"])],
        ["restore failures", str(len(stats["restore_failures"]))],
        ["resize failures", str(len(stats["resize_failures"]))],
        ["injected faults fired", str(len(plan.fired)) if plan is not None else "0"],
    ]
    stream.write(format_table(["quantity", "value"], rows) + "\n")
    lane_rows = [
        [
            str(lane["shard"]),
            lane["state"],
            str(lane["ops_enqueued"]),
            str(lane["rejected_overloaded"]),
            str(lane["rejected_quarantined"]),
            str(lane["ops_expired"]),
            str(lane["trips"]),
            str(lane["restores"]),
        ]
        for lane in stats["per_shard"]
    ]
    stream.write(
        format_table(
            ["lane", "state", "enqueued", "rej-over", "rej-quar",
             "expired", "trips", "restores"],
            lane_rows,
        )
        + "\n"
    )
    return 0 if healthy else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
