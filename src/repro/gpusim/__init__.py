"""Warp-level GPU SIMT simulator substrate.

The paper's data structures (slab list, slab hash, SlabAlloc) are defined
entirely in terms of warp-wide CUDA primitives: ``__ballot``, ``__shfl``,
``__ffs``, coalesced 128-byte slab reads, and 32/64-bit ``atomicCAS``.  This
package provides a faithful software model of exactly those primitives so that
the warp-cooperative algorithms from the paper run unchanged on a CPU:

* :class:`~repro.gpusim.device.DeviceSpec` / :class:`~repro.gpusim.device.Device`
  — a K40c-like device description plus the per-run event counters.
* :class:`~repro.gpusim.memory.GlobalMemory` — word-addressed global memory
  operations (coalesced slab reads, uncoalesced word reads, atomic CAS /
  exchange / or / add) with transaction accounting.
* :class:`~repro.gpusim.warp.Warp` — a 32-lane warp context exposing ballots,
  shuffles and find-first-set with instruction accounting.
* :class:`~repro.gpusim.scheduler.WarpScheduler` — a seeded interleaving
  scheduler that runs warp procedures (Python generators yielding at global
  memory accesses) in arbitrary interleavings, so the lock-free CAS retry
  paths are genuinely exercised.
* :class:`~repro.gpusim.costmodel.CostModel` — converts counted events into
  modelled execution time for the device, which is what every benchmark
  reports (Python wall-clock time is meaningless for a simulated GPU).
"""

from repro.gpusim.counters import Counters
from repro.gpusim.device import Device, DeviceSpec, TESLA_K40C, GTX_970
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.warp import Warp, WARP_SIZE
from repro.gpusim.intrinsics import ballot_from_bools, first_set_lane, lane_mask, popc
from repro.gpusim.scheduler import WarpScheduler, run_sequential
from repro.gpusim.costmodel import CostModel, CostBreakdown
from repro.gpusim.vectorize import CounterTally, combine_codes, first_occurrence, group_ranks

__all__ = [
    "CounterTally",
    "combine_codes",
    "first_occurrence",
    "group_ranks",
    "Counters",
    "Device",
    "DeviceSpec",
    "TESLA_K40C",
    "GTX_970",
    "GlobalMemory",
    "Warp",
    "WARP_SIZE",
    "ballot_from_bools",
    "first_set_lane",
    "lane_mask",
    "popc",
    "WarpScheduler",
    "run_sequential",
    "CostModel",
    "CostBreakdown",
]
