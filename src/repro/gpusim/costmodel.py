"""Analytical cost model: event counts -> modelled execution time.

The paper reports throughput measured on an NVIDIA Tesla K40c.  This
reproduction runs the same algorithms on a software SIMT substrate, so Python
wall-clock time says nothing about GPU performance.  Instead, every benchmark
measures the *events* a real GPU would have to perform — coalesced 128-byte
transactions, scattered sector accesses, 32/64-bit atomics, warp instructions,
shared-memory reads, kernel launches — and this module converts them into
modelled time with a roofline-style model:

``total = launch_overhead + max(memory, atomics, compute) + 0.2 * (sum of the other two)``

The ``max`` term is the classic roofline bound (the device overlaps the three
engines); the 20 % tail accounts for imperfect overlap and dependent accesses.

Calibration
-----------
The device constants in :data:`repro.gpusim.device.TESLA_K40C` were chosen so
that the *headline* paper numbers are approximately reproduced by the counted
event streams of this implementation:

* slab hash bulk search at low load (one 128 B slab read plus ~45 warp
  instructions per query) models out to roughly 0.9–1.0 G queries/s
  (paper: 937 M queries/s);
* slab hash bulk REPLACE at low load (one slab read plus one 64-bit CAS plus
  ~55 warp instructions per insertion) models out to roughly 0.45–0.55 G
  insertions/s (paper: 512 M updates/s);
* SlabAlloc (one 32-bit atomic OR plus a handful of warp instructions per
  allocation) models out to roughly 0.6 G allocations/s (paper: 600 M/s).

Every other reported number (the utilization sweeps, the 65 % cliff, the
incremental-versus-rebuild gap, the Misra comparison, the allocator table) is
*not* calibrated — it follows from the counted events of the respective
algorithm under the same model, which is what preserves the paper's trends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TypedDict


class CostBreakdownDict(TypedDict):
    """JSON-ready payload of :meth:`CostBreakdown.as_dict`."""

    memory_time: float
    atomic_time: float
    compute_time: float
    launch_overhead: float
    total_time: float
    bottleneck: str

from repro.gpusim.counters import Counters
from repro.gpusim.device import DeviceSpec, TESLA_K40C

__all__ = ["CostBreakdown", "CostModel"]

#: Fraction of the non-bottleneck engine time that is not hidden by overlap.
OVERLAP_INEFFICIENCY = 0.2

#: Extra serialization charged per failed CAS (fraction of one atomic issue).
CAS_FAILURE_PENALTY = 0.5


@dataclass(frozen=True)
class CostBreakdown:
    """Modelled time of one measured phase, split by engine."""

    memory_time: float
    atomic_time: float
    compute_time: float
    launch_overhead: float
    total_time: float
    bottleneck: str

    def as_dict(self) -> CostBreakdownDict:
        return {
            "memory_time": self.memory_time,
            "atomic_time": self.atomic_time,
            "compute_time": self.compute_time,
            "launch_overhead": self.launch_overhead,
            "total_time": self.total_time,
            "bottleneck": self.bottleneck,
        }


class CostModel:
    """Convert :class:`~repro.gpusim.counters.Counters` into modelled time."""

    def __init__(self, spec: DeviceSpec = TESLA_K40C) -> None:
        self.spec = spec

    # ------------------------------------------------------------------ #

    def elapsed(
        self,
        counters: Counters,
        working_set_bytes: Optional[int] = None,
    ) -> CostBreakdown:
        """Modelled execution time of the events in ``counters``.

        Parameters
        ----------
        counters:
            Events of the measured phase (typically from ``Device.phase()``).
        working_set_bytes:
            Size of the randomly accessed working set.  When it fits in the
            device's L2 cache, atomics run at the (much higher) L2 rate; this
            is what makes small cuckoo tables build so fast in Fig. 5a.
        """
        spec = self.spec

        # Memory engine: coalesced bulk traffic plus scattered sector traffic.
        memory_time = counters.coalesced_bytes / spec.effective_bandwidth
        memory_time += counters.uncoalesced_transactions / spec.random_sector_rate

        # Atomic engine.
        in_l2 = working_set_bytes is not None and working_set_bytes <= spec.l2_cache_bytes
        rate32 = spec.atomic32_rate_l2 if in_l2 else spec.atomic32_rate_dram
        rate64 = spec.atomic64_rate_l2 if in_l2 else spec.atomic64_rate_dram
        atomic_time = counters.atomic32 / rate32 + counters.atomic64 / rate64
        atomic_time += CAS_FAILURE_PENALTY * counters.cas_failures / rate32

        # Compute engine: warp-wide instructions plus shared-memory traffic.
        compute_time = counters.total_warp_instructions / spec.warp_instruction_rate
        compute_time += counters.shared_reads / spec.shared_read_rate

        launch_overhead = counters.kernel_launches * spec.kernel_launch_overhead

        engines = {
            "memory": memory_time,
            "atomics": atomic_time,
            "compute": compute_time,
        }
        bottleneck = max(engines, key=engines.get)
        bound = engines[bottleneck]
        tail = OVERLAP_INEFFICIENCY * (sum(engines.values()) - bound)
        total = launch_overhead + bound + tail

        return CostBreakdown(
            memory_time=memory_time,
            atomic_time=atomic_time,
            compute_time=compute_time,
            launch_overhead=launch_overhead,
            total_time=total,
            bottleneck=bottleneck,
        )

    # ------------------------------------------------------------------ #

    def throughput(
        self,
        num_ops: int,
        counters: Counters,
        working_set_bytes: Optional[int] = None,
    ) -> float:
        """Operations per second of modelled time for the measured phase."""
        if num_ops <= 0:
            raise ValueError(f"num_ops must be positive, got {num_ops}")
        breakdown = self.elapsed(counters, working_set_bytes=working_set_bytes)
        if breakdown.total_time <= 0.0:
            raise ValueError("modelled time is zero; no events were recorded")
        return num_ops / breakdown.total_time

    @staticmethod
    def mops(rate_per_second: float) -> float:
        """Convert an ops/s rate to the paper's M ops/s units."""
        return rate_per_second / 1e6
