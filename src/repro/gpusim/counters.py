"""Event counters for the simulated device.

Every global-memory access, atomic operation and warp-wide instruction issued
by the data structures is recorded here.  The cost model
(:mod:`repro.gpusim.costmodel`) converts a :class:`Counters` snapshot into
modelled execution time; the benchmark harness reports throughput as
``operations / modelled_time``.

The counters are deliberately fine grained so that the per-operation access
profile of each data structure (e.g. "one coalesced 128 B read plus one 64-bit
CAS per slab-hash insertion" versus "one uncoalesced 8 B read per linked-list
hop" for the Misra baseline) is visible and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

__all__ = ["Counters", "scale_counters"]


@dataclass
class Counters:
    """Accumulated device events.

    Attributes
    ----------
    coalesced_read_transactions:
        Number of fully coalesced 128-byte read transactions (one per slab
        read performed by a whole warp).
    coalesced_write_transactions:
        Number of fully coalesced 128-byte write transactions.
    uncoalesced_read_words:
        Number of 32-bit words read through scattered (per-thread) accesses.
        Each costs a 32-byte sector on the modelled device.
    uncoalesced_write_words:
        Number of 32-bit words written through scattered accesses.
    atomic32 / atomic64:
        Number of 32-bit / 64-bit atomic operations (CAS, exchange, or, add).
    cas_failures:
        Number of atomic compare-and-swap operations whose comparison failed
        (i.e. contention-induced retries).
    shared_reads:
        Shared-memory reads (used by the regular SlabAlloc address decode).
    warp_ballots / warp_shuffles:
        Warp-wide communication instructions issued.
    warp_instructions:
        Other warp-wide ALU/control instructions charged by the algorithms
        (loop overhead, hashing, address arithmetic).
    allocations / deallocations:
        Memory units handed out / returned by an allocator.
    resident_changes:
        SlabAlloc resident-block changes (each implies one coalesced bitmap
        read).
    kernel_launches:
        Number of kernel launches (each pays a fixed launch overhead).
    """

    coalesced_read_transactions: int = 0
    coalesced_write_transactions: int = 0
    uncoalesced_read_words: int = 0
    uncoalesced_write_words: int = 0
    atomic32: int = 0
    atomic64: int = 0
    cas_failures: int = 0
    shared_reads: int = 0
    warp_ballots: int = 0
    warp_shuffles: int = 0
    warp_instructions: int = 0
    allocations: int = 0
    deallocations: int = 0
    resident_changes: int = 0
    kernel_launches: int = 0

    def copy(self) -> "Counters":
        """Return an independent snapshot of the current counts."""
        return Counters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def diff(self, earlier: "Counters") -> "Counters":
        """Return the events accumulated since ``earlier`` (self - earlier)."""
        return Counters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "Counters") -> "Counters":
        return Counters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __iadd__(self, other: "Counters") -> "Counters":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    # ------------------------------------------------------------------ #
    # Derived quantities used by the cost model.
    # ------------------------------------------------------------------ #

    @property
    def coalesced_bytes(self) -> int:
        """Bytes moved through coalesced 128-byte transactions."""
        return 128 * (self.coalesced_read_transactions + self.coalesced_write_transactions)

    @property
    def uncoalesced_transactions(self) -> int:
        """Number of 32-byte sectors touched by scattered word accesses."""
        return self.uncoalesced_read_words + self.uncoalesced_write_words

    @property
    def uncoalesced_bytes(self) -> int:
        """Bytes moved (wastefully, one 32-byte sector per word) by scattered accesses."""
        return 32 * self.uncoalesced_transactions

    @property
    def total_atomics(self) -> int:
        return self.atomic32 + self.atomic64

    @property
    def total_warp_instructions(self) -> int:
        """All warp-wide instructions: ballots, shuffles and generic ALU/control."""
        return self.warp_ballots + self.warp_shuffles + self.warp_instructions

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (useful for reports and assertions in tests)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"Counters({parts})"


def scale_counters(counters: Counters, factor: float) -> Counters:
    """Scale every event count by ``factor`` (the simulate-small / model-at-paper-scale step).

    Kernel launches are *not* scaled: running the paper-scale workload still
    uses the same number of kernel launches as the scaled simulation.
    """
    if factor <= 0:
        raise ValueError(f"scale factor must be positive, got {factor}")
    scaled = Counters()
    for f in fields(Counters):
        value = getattr(counters, f.name)
        if f.name == "kernel_launches":
            setattr(scaled, f.name, value)
        else:
            setattr(scaled, f.name, int(round(value * factor)))
    return scaled
