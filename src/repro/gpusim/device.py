"""Device model: hardware characteristics plus per-run event accounting.

A :class:`DeviceSpec` captures the handful of hardware parameters that the
paper's performance analysis actually depends on (memory bandwidth, atomic
throughput, warp-instruction issue rate, L2 size, kernel launch overhead).
:data:`TESLA_K40C` matches the evaluation platform of the paper; the numbers
are the published K40c characteristics plus calibration constants documented
in :mod:`repro.gpusim.costmodel`.

A :class:`Device` instance owns a mutable :class:`~repro.gpusim.counters.Counters`
object that every data structure built on top of it reports events into, and
offers :meth:`Device.phase` to measure the events of a single experiment phase.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

from repro.gpusim.counters import Counters


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU.

    The throughput figures are *effective achievable* rates used by the cost
    model, not theoretical peaks; see :mod:`repro.gpusim.costmodel` for how
    they were calibrated against the paper's headline numbers.
    """

    name: str
    warp_size: int = 32
    num_sms: int = 15
    clock_hz: float = 745e6
    #: Peak DRAM bandwidth in bytes/s (K40c: 288 GB/s GDDR5).
    dram_bandwidth: float = 288e9
    #: Fraction of peak bandwidth achievable with coalesced 128 B transactions
    #: at random locations (slab reads are random at 128 B granularity).
    coalesced_efficiency: float = 0.72
    #: Achievable rate of scattered 32-byte sector accesses (per-thread random
    #: reads/writes, e.g. classic linked-list node hops or cuckoo probes).
    #: ~160 GB/s of 32-byte sectors: random accesses still fetch full sectors
    #: but overlap well when independent (cuckoo probes); dependent chains
    #: (linked-list hops) additionally pay per-hop instruction charges.
    random_sector_rate: float = 5.0e9
    #: L2 cache size in bytes (K40c: 1.5 MB).
    l2_cache_bytes: int = 1_572_864
    #: Global-memory atomic throughput when the working set spills to DRAM.
    atomic32_rate_dram: float = 900e6
    atomic64_rate_dram: float = 700e6
    #: Atomic throughput when the working set fits in L2 (small tables).
    atomic32_rate_l2: float = 3.2e9
    atomic64_rate_l2: float = 2.0e9
    #: Aggregate warp-instruction issue rate across the device.
    warp_instruction_rate: float = 44e9
    #: Shared-memory read rate (used by SlabAlloc's 32->64 bit address decode).
    shared_read_rate: float = 80e9
    #: Fixed cost per kernel launch, seconds.
    kernel_launch_overhead: float = 5e-6
    #: Device memory capacity in bytes (K40c: 12 GB).
    dram_capacity: int = 12 * 1024**3

    @property
    def effective_bandwidth(self) -> float:
        """Achievable bandwidth (bytes/s) for coalesced 128 B transactions."""
        return self.dram_bandwidth * self.coalesced_efficiency

    def scaled(self, **overrides: object) -> "DeviceSpec":
        """Return a copy of the spec with selected fields overridden."""
        return replace(self, **overrides)


#: The paper's evaluation platform: NVIDIA Tesla K40c (Kepler, sm_35, ECC off).
TESLA_K40C = DeviceSpec(name="Tesla K40c")

#: The platform Moscovici et al. used for GFSL (GeForce GTX 970, 224 GB/s),
#: referenced by the Section VI-C discussion.
GTX_970 = DeviceSpec(
    name="GeForce GTX 970",
    num_sms=13,
    clock_hz=1.05e9,
    dram_bandwidth=224e9,
    l2_cache_bytes=1_792 * 1024,
    dram_capacity=4 * 1024**3,
)


class Device:
    """A simulated GPU: a spec plus the event counters data structures report into.

    Parameters
    ----------
    spec:
        Hardware description; defaults to the paper's Tesla K40c.
    """

    def __init__(self, spec: DeviceSpec = TESLA_K40C) -> None:
        self.spec = spec
        self.counters = Counters()

    # ------------------------------------------------------------------ #
    # Measurement helpers
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Counters:
        """Return a copy of the current counters."""
        return self.counters.copy()

    def events_since(self, snapshot: Counters) -> Counters:
        """Return the events accumulated since ``snapshot`` was taken."""
        return self.counters.diff(snapshot)

    @contextmanager
    def phase(self) -> Iterator[Counters]:
        """Measure the events of one experiment phase.

        Yields a :class:`Counters` object that is *filled in* when the with
        block exits::

            with device.phase() as events:
                table.bulk_build(keys, values)
            t = cost_model.elapsed(events).total_time
        """
        before = self.snapshot()
        measured = Counters()
        try:
            yield measured
        finally:
            measured += self.counters.diff(before)

    def reset(self) -> None:
        """Zero the device counters (does not touch any data structure state)."""
        self.counters.reset()

    def launch_kernel(self) -> None:
        """Record a kernel launch (fixed overhead in the cost model)."""
        self.counters.kernel_launches += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Device({self.spec.name!r})"
