"""Global-memory operations with transaction and atomic accounting.

The data structures own their backing stores as NumPy ``uint32`` arrays (a
structure-of-arrays layout, as the guides recommend); this module provides the
*access* layer through which every read, write and atomic goes, so that the
cost model sees an accurate event stream.

Two access classes are distinguished, mirroring the paper's discussion of
coalescing:

* **Coalesced slab accesses** (:meth:`GlobalMemory.read_slab`,
  :meth:`GlobalMemory.write_slab`): the whole warp reads or writes one
  128-byte slab in a single transaction.  This is the slab list's fundamental
  access pattern.
* **Uncoalesced word accesses** (:meth:`GlobalMemory.read_word`,
  :meth:`GlobalMemory.write_word`): a single thread touches a single 32-bit
  word at an arbitrary address; the device still moves a 32-byte sector.
  This is the access pattern of classic (per-thread) linked lists and of
  open-addressing probes.

Atomics are modelled as instantaneous (the simulator interleaves warps only at
explicit yield points, so each atomic is trivially indivisible) but fully
accounted, including failed CAS attempts which the cost model may penalize as
contention.
"""

from __future__ import annotations

from typing import SupportsInt, Tuple, Union

#: A store index: a flat word offset or a (row, lane) pair.
Index = Union[int, Tuple[int, ...]]

import numpy as np

from repro.gpusim.counters import Counters
from repro.gpusim.errors import MemoryFault

__all__ = ["GlobalMemory"]

_UINT32_MASK = 0xFFFFFFFF


def _as_int(value: SupportsInt) -> int:
    """Convert a NumPy scalar or Python number to a plain Python int."""
    return int(value) & _UINT32_MASK


class GlobalMemory:
    """Accounting wrapper for all simulated global-memory traffic.

    Parameters
    ----------
    counters:
        The device counters to report events into (usually
        ``device.counters``).
    """

    def __init__(self, counters: Counters) -> None:
        self.counters = counters

    # ------------------------------------------------------------------ #
    # Coalesced (warp-wide) accesses
    # ------------------------------------------------------------------ #

    def read_slab(self, store: np.ndarray, row: int) -> np.ndarray:
        """Read one 128-byte slab (32 consecutive 32-bit words) coalescedly.

        ``store`` must be a 2-D ``uint32`` array whose rows are slabs.  Returns
        a *copy* of the row: the warp's view of the slab at the moment of the
        read, which may become stale if another warp mutates the slab
        afterwards (exactly like a real coalesced load).
        """
        if row < 0 or row >= store.shape[0]:
            raise MemoryFault(f"slab read out of bounds: row {row} of {store.shape[0]}")
        self.counters.coalesced_read_transactions += 1
        return store[row].copy()

    def write_slab(self, store: np.ndarray, row: int, values: np.ndarray) -> None:
        """Write one full slab coalescedly (used by FLUSH compaction)."""
        if row < 0 or row >= store.shape[0]:
            raise MemoryFault(f"slab write out of bounds: row {row} of {store.shape[0]}")
        if len(values) != store.shape[1]:
            raise MemoryFault(
                f"slab write size mismatch: {len(values)} words into {store.shape[1]}-word slab"
            )
        self.counters.coalesced_write_transactions += 1
        store[row] = np.asarray(values, dtype=np.uint32)

    # ------------------------------------------------------------------ #
    # Uncoalesced (per-thread) accesses
    # ------------------------------------------------------------------ #

    def read_word(self, store: np.ndarray, index: Index) -> int:
        """Read a single 32-bit word at an arbitrary (scattered) address."""
        self.counters.uncoalesced_read_words += 1
        return _as_int(store[index])

    def write_word(self, store: np.ndarray, index: Index, value: int) -> None:
        """Write a single 32-bit word at an arbitrary (scattered) address."""
        self.counters.uncoalesced_write_words += 1
        store[index] = np.uint32(value & _UINT32_MASK)

    # ------------------------------------------------------------------ #
    # Atomics
    # ------------------------------------------------------------------ #

    def atomic_cas32(self, store: np.ndarray, index: Index, compare: int, value: int) -> int:
        """32-bit atomic compare-and-swap; returns the old value."""
        self.counters.atomic32 += 1
        old = _as_int(store[index])
        if old == (compare & _UINT32_MASK):
            store[index] = np.uint32(value & _UINT32_MASK)
        else:
            self.counters.cas_failures += 1
        return old

    def atomic_cas64(
        self,
        store: np.ndarray,
        row: int,
        lane: int,
        compare: Tuple[int, int],
        value: Tuple[int, int],
    ) -> Tuple[int, int]:
        """64-bit atomic CAS over two adjacent 32-bit lanes of a slab.

        The slab hash stores a key-value pair in lanes ``(lane, lane+1)`` and
        inserts it with a single 64-bit CAS, exactly as in the paper's
        REPLACE pseudocode.  Returns the old pair.
        """
        if lane % 2 != 0:
            raise MemoryFault(f"64-bit CAS must target an even lane, got {lane}")
        self.counters.atomic64 += 1
        old = (_as_int(store[row, lane]), _as_int(store[row, lane + 1]))
        if old == (compare[0] & _UINT32_MASK, compare[1] & _UINT32_MASK):
            store[row, lane] = np.uint32(value[0] & _UINT32_MASK)
            store[row, lane + 1] = np.uint32(value[1] & _UINT32_MASK)
        else:
            self.counters.cas_failures += 1
        return old

    def atomic_exch32(self, store: np.ndarray, index: Index, value: int) -> int:
        """32-bit atomic exchange; returns the old value."""
        self.counters.atomic32 += 1
        old = _as_int(store[index])
        store[index] = np.uint32(value & _UINT32_MASK)
        return old

    def atomic_exch64(self, store: np.ndarray, row: int, lane: int, value: Tuple[int, int]) -> Tuple[int, int]:
        """64-bit atomic exchange over two adjacent lanes (cuckoo eviction)."""
        if lane % 2 != 0:
            raise MemoryFault(f"64-bit exchange must target an even lane, got {lane}")
        self.counters.atomic64 += 1
        old = (_as_int(store[row, lane]), _as_int(store[row, lane + 1]))
        store[row, lane] = np.uint32(value[0] & _UINT32_MASK)
        store[row, lane + 1] = np.uint32(value[1] & _UINT32_MASK)
        return old

    def atomic_or32(self, store: np.ndarray, index: Index, value: int) -> int:
        """32-bit atomic OR; returns the old value (SlabAlloc bit allocation)."""
        self.counters.atomic32 += 1
        old = _as_int(store[index])
        store[index] = np.uint32((old | value) & _UINT32_MASK)
        return old

    def atomic_and32(self, store: np.ndarray, index: Index, value: int) -> int:
        """32-bit atomic AND; returns the old value (SlabAlloc deallocation)."""
        self.counters.atomic32 += 1
        old = _as_int(store[index])
        store[index] = np.uint32(old & value & _UINT32_MASK)
        return old

    def atomic_add32(self, store: np.ndarray, index: Index, value: int) -> int:
        """32-bit atomic add; returns the old value."""
        self.counters.atomic32 += 1
        old = _as_int(store[index])
        store[index] = np.uint32((old + value) & _UINT32_MASK)
        return old

    # ------------------------------------------------------------------ #
    # Shared memory
    # ------------------------------------------------------------------ #

    def shared_read(self) -> None:
        """Record a shared-memory read (SlabAlloc's 32->64 bit address decode)."""
        self.counters.shared_reads += 1
