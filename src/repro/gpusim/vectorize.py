"""Array-level helpers for the vectorized bulk-execution backend.

The vectorized backend (:mod:`repro.core.bulk_exec`) replaces the per-warp
generator schedule of the bulk operations with batched NumPy resolution.  To
keep the device counters *bit-identical* to the sequential reference schedule
it synthesizes every event the generators would have recorded; this module
holds the pieces of that machinery that are pure array manipulation and know
nothing about slabs:

* :class:`CounterTally` — an accumulator mirroring
  :class:`~repro.gpusim.counters.Counters` that collects synthesized event
  totals as plain integers and commits them to the live counters in one step.
* :func:`group_ranks` — the arrival rank of every element within its group,
  the core primitive behind "the r-th delete of key k removes the r-th
  occurrence" and "the r-th new key of bucket b takes the r-th free slot".
* :func:`combine_codes` / :func:`first_occurrence` — (bucket, key) group codes
  and first-occurrence resolution in table scan order.
* :func:`phased_order` — the serial execution order of a phased mixed-op
  schedule (the ``concurrent_batch`` fast path): per warp chunk, one program
  per operation phase present, drained sequentially.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.gpusim.counters import Counters

__all__ = [
    "CounterTally",
    "combine_codes",
    "first_occurrence",
    "group_ranks",
    "phased_order",
    "run_starts",
]


class CounterTally:
    """Synthesized device events, committed to a :class:`Counters` in one step.

    The vectorized backend computes event totals with array arithmetic (sums of
    per-operation iteration counts and so on); accumulating them here instead
    of poking the live counters keeps the synthesis code side-effect free until
    :meth:`commit`.
    """

    __slots__ = ("_events",)

    def __init__(self) -> None:
        self._events = {}

    def add(self, field: str, amount: int) -> None:
        if amount:
            self._events[field] = self._events.get(field, 0) + int(amount)

    def commit(self, counters: Counters) -> None:
        """Add every tallied event to the live device counters."""
        for field, amount in self._events.items():
            setattr(counters, field, getattr(counters, field) + amount)


def combine_codes(buckets: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Pack (bucket, key) pairs into sortable uint64 group codes."""
    return (np.asarray(buckets, dtype=np.uint64) << np.uint64(32)) | np.asarray(
        keys, dtype=np.uint64
    )


def run_starts(sorted_codes: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first element of each run of equal values.

    ``run_starts([3, 3, 7, 7, 7]) == [True, False, True, False, False]``.
    The input must already be sorted (or at least run-grouped).
    """
    starts = np.empty(len(sorted_codes), dtype=bool)
    if len(starts):
        starts[0] = True
        np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=starts[1:])
    return starts


def group_ranks(codes: np.ndarray) -> np.ndarray:
    """Arrival rank (0-based) of each element within its equal-code group.

    ``group_ranks([7, 3, 7, 7, 3]) == [0, 0, 1, 2, 1]``.  Ranks follow array
    order, which for the bulk backend is exactly the serial execution order of
    the reference schedule.
    """
    codes = np.asarray(codes)
    n = len(codes)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(codes, kind="stable")
    run_start = run_starts(codes[order])
    run_ids = np.cumsum(run_start) - 1
    starts = np.flatnonzero(run_start)
    ranks_sorted = np.arange(n, dtype=np.int64) - starts[run_ids]
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = ranks_sorted
    return ranks


def phased_order(chunk_ids: np.ndarray, phases: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Serial execution order of a phased mixed-op warp schedule.

    The reference concurrent driver enqueues, per warp chunk, one warp
    program per operation phase present (insert, then delete, then search)
    and ``run_sequential`` drains them in that order; within a program the
    WCWS work queue processes lanes in ascending lane order.  The serial
    execution order of the operations is therefore ``(chunk, phase, lane)``.

    ``chunk_ids[i]`` / ``phases[i]`` give operation ``i``'s warp chunk and
    phase rank (both already in lane order within each chunk).  Returns
    ``(order, program_start)``: ``order`` permutes operations into serial
    execution order, and ``program_start[j]`` is True when the ``j``-th
    operation *in serial order* is the first of its (chunk, phase) program —
    i.e. the operation whose program issues the initial work-queue ballot.
    """
    chunk_ids = np.asarray(chunk_ids, dtype=np.int64)
    phases = np.asarray(phases, dtype=np.int64)
    order = np.lexsort((np.arange(len(chunk_ids)), phases, chunk_ids))
    if len(order) == 0:
        return order, np.zeros(0, dtype=bool)
    stride = int(phases.max()) + 1 if len(phases) else 1
    codes = chunk_ids[order] * stride + phases[order]
    return order, run_starts(codes)


def first_occurrence(
    sorted_codes: np.ndarray, query_codes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Locate each query code in a sorted code array.

    Returns ``(found, index)``: ``found[i]`` is True when ``query_codes[i]``
    occurs in ``sorted_codes`` and ``index[i]`` is the position of its first
    occurrence (undefined where not found).
    """
    sorted_codes = np.asarray(sorted_codes)
    query_codes = np.asarray(query_codes)
    idx = np.searchsorted(sorted_codes, query_codes, side="left")
    clipped = np.minimum(idx, max(len(sorted_codes) - 1, 0))
    if len(sorted_codes):
        found = (idx < len(sorted_codes)) & (sorted_codes[clipped] == query_codes)
    else:
        found = np.zeros(len(query_codes), dtype=bool)
    return found, clipped
