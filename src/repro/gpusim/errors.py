"""Exception types raised by the GPU simulator substrate."""


class GpuSimError(Exception):
    """Base class for all simulator errors."""


class MemoryFault(GpuSimError):
    """Raised when a simulated memory access is out of bounds or misaligned."""


class AllocationError(GpuSimError):
    """Raised when a simulated allocator cannot satisfy a request."""


class SlabAllocExhausted(AllocationError):
    """Raised when SlabAlloc has no free unit and cannot grow further.

    A subclass (not a replacement) of :class:`AllocationError`, so existing
    ``except AllocationError`` handlers keep working; the service layer and
    the fault plane use the narrower type to mean specifically "the slab
    pool is full", as opposed to misuse errors like double frees.
    """


class LaunchError(GpuSimError):
    """Raised when a kernel launch configuration is invalid."""


class SchedulerError(GpuSimError):
    """Raised when the warp scheduler is misused (e.g. re-running a finished warp)."""
