"""Exception types raised by the GPU simulator substrate."""


class GpuSimError(Exception):
    """Base class for all simulator errors."""


class MemoryFault(GpuSimError):
    """Raised when a simulated memory access is out of bounds or misaligned."""


class AllocationError(GpuSimError):
    """Raised when a simulated allocator cannot satisfy a request."""


class LaunchError(GpuSimError):
    """Raised when a kernel launch configuration is invalid."""


class SchedulerError(GpuSimError):
    """Raised when the warp scheduler is misused (e.g. re-running a finished warp)."""
