"""Warp scheduling: sequential draining and seeded concurrent interleaving.

The warp-cooperative procedures in :mod:`repro.core` are written as Python
generators that ``yield`` after every global-memory access (slab read, CAS,
allocation).  That makes them *resumable*: the scheduler can run any number of
warps "concurrently" by interleaving their steps.  Because all shared state
lives in the simulated global memory, interleaving at yield points genuinely
exercises the lock-free algorithms' concurrency paths: CAS failures and
retries, two warps racing to append a slab to the same list (the loser
deallocates its slab), searches observing partially built lists, and so on.

Two drivers are provided:

* :func:`run_sequential` — drain each warp generator to completion in order.
  This is one legal schedule and is what the bulk (static-comparison)
  benchmarks use, since it is the cheapest to execute.
* :class:`WarpScheduler` — randomized round-robin interleaving with a seeded
  RNG, used by the concurrent benchmarks and by the property-based tests that
  sweep schedules looking for linearizability violations.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Optional, Sequence

import numpy as np

from repro.gpusim.errors import SchedulerError

__all__ = ["run_sequential", "WarpScheduler"]

WarpProgram = Generator[None, None, None]


def run_sequential(programs: Iterable[WarpProgram]) -> int:
    """Drain each warp program to completion, one after another.

    Returns the total number of scheduling steps executed (useful in tests to
    compare schedule lengths).
    """
    steps = 0
    for program in programs:
        for _ in program:
            steps += 1
    return steps


class WarpScheduler:
    """Randomized interleaving scheduler over a set of warp programs.

    Parameters
    ----------
    seed:
        Seed for the scheduling RNG.  Two runs with the same seed and the same
        set of programs produce the same interleaving, which the concurrency
        tests rely on for reproducibility.
    max_steps:
        Safety valve: raise :class:`SchedulerError` if the programs have not
        all finished after this many steps (a lock-free algorithm that
        livelocks under some schedule would otherwise hang the test suite).
    """

    def __init__(self, seed: Optional[int] = None, max_steps: int = 50_000_000) -> None:
        self.rng = np.random.default_rng(seed)
        self.max_steps = max_steps
        self.steps_executed = 0

    def run(self, programs: Sequence[WarpProgram]) -> int:
        """Interleave the given warp programs until all complete.

        At each step one live program is chosen uniformly at random and
        advanced to its next yield point (i.e. through its next global-memory
        access).  Returns the number of steps executed in this call.
        """
        live: List[WarpProgram] = list(programs)
        steps = 0
        while live:
            if steps >= self.max_steps:
                raise SchedulerError(
                    f"scheduler exceeded max_steps={self.max_steps}; "
                    "possible livelock in a warp program"
                )
            idx = int(self.rng.integers(len(live)))
            program = live[idx]
            try:
                next(program)
            except StopIteration:
                live.pop(idx)
            else:
                steps += 1
        self.steps_executed += steps
        return steps

    def run_in_waves(self, programs: Sequence[WarpProgram], wave_size: int) -> int:
        """Interleave programs in waves of at most ``wave_size`` concurrent warps.

        Models the fact that a real GPU only has a bounded number of resident
        warps: programs beyond the wave size only start once a slot frees up.
        """
        if wave_size <= 0:
            raise SchedulerError(f"wave_size must be positive, got {wave_size}")
        pending = list(programs)
        live: List[WarpProgram] = []
        steps = 0
        while pending or live:
            while pending and len(live) < wave_size:
                live.append(pending.pop(0))
            if steps >= self.max_steps:
                raise SchedulerError(
                    f"scheduler exceeded max_steps={self.max_steps}; "
                    "possible livelock in a warp program"
                )
            idx = int(self.rng.integers(len(live)))
            try:
                next(live[idx])
            except StopIteration:
                live.pop(idx)
            else:
                steps += 1
        self.steps_executed += steps
        return steps
