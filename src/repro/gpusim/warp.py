"""The 32-lane warp execution context.

The paper's warp-cooperative work sharing (WCWS) strategy assigns operations
per thread (lane) but processes them per warp: all 32 lanes cooperate on one
lane's operation at a time, communicating through ballots and shuffles.  A
:class:`Warp` instance is the handle the data-structure code uses for those
warp-wide primitives; each call is recorded in the device counters so the cost
model can charge warp-instruction time.

Lane-private values (each lane's key, value, active flag, its 32-bit word of a
slab read, ...) are represented as length-32 NumPy arrays indexed by lane,
which is the structure-of-arrays layout the HPC guides recommend and exactly
matches how a warp holds such values in registers.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.gpusim import intrinsics
from repro.gpusim.counters import Counters

__all__ = ["Warp", "WARP_SIZE"]

#: SIMD width of the modelled device (NVIDIA warp).
WARP_SIZE = 32

#: Shared, immutable lane-index vector (0..31), so ``Warp.lanes`` does not
#: allocate a fresh ``np.arange`` per access.  Read-only: callers that need a
#: mutable copy must copy it explicitly.
_LANES = np.arange(WARP_SIZE)
_LANES.setflags(write=False)


class Warp:
    """A warp: 32 lanes executing in lockstep, with instruction accounting.

    Parameters
    ----------
    warp_id:
        Global warp identifier (used e.g. by SlabAlloc's resident-block hash).
    counters:
        Device counters to record warp-wide instructions into.
    """

    __slots__ = ("warp_id", "counters")

    def __init__(self, warp_id: int, counters: Counters) -> None:
        self.warp_id = warp_id
        self.counters = counters

    # ------------------------------------------------------------------ #
    # Warp-wide communication intrinsics (counted)
    # ------------------------------------------------------------------ #

    def ballot(self, predicates: Sequence[bool] | np.ndarray) -> int:
        """``__ballot``: 32-bit mask of lanes whose predicate is true."""
        self.counters.warp_ballots += 1
        return intrinsics.ballot_from_bools(predicates)

    def shfl(self, values: Union[Sequence[int], np.ndarray], src_lane: int) -> int:
        """``__shfl``: broadcast lane ``src_lane``'s value to the whole warp.

        Returns the broadcast value (all lanes receive the same value, so a
        scalar return models the warp-wide register state).
        """
        self.counters.warp_shuffles += 1
        if not 0 <= src_lane < WARP_SIZE:
            raise ValueError(f"shuffle source lane out of range: {src_lane}")
        return values[src_lane]

    def ffs(self, mask: int) -> int:
        """``__ffs``: 1-based index of the least significant set bit (0 if none)."""
        self.counters.warp_instructions += 1
        return intrinsics.ffs(mask)

    def first_set_lane(self, mask: int) -> int:
        """Lane index of the least significant set bit, or -1 if none."""
        self.counters.warp_instructions += 1
        return intrinsics.first_set_lane(mask)

    def popc(self, mask: int) -> int:
        """``__popc``: number of set bits."""
        self.counters.warp_instructions += 1
        return intrinsics.popc(mask)

    # ------------------------------------------------------------------ #
    # Generic instruction accounting
    # ------------------------------------------------------------------ #

    def charge(self, instructions: int) -> None:
        """Charge generic warp-wide ALU/control instructions.

        The warp-cooperative procedures charge a small, documented number of
        instructions per loop iteration (hashing, address arithmetic, branch
        handling) on top of the explicitly counted ballots/shuffles, so the
        cost model sees an instruction stream of realistic length.
        """
        self.counters.warp_instructions += int(instructions)

    def charge_divergent(self, instructions_per_lane: int, active_lanes: int) -> None:
        """Charge instructions for a divergent per-thread code section.

        When lanes execute *different* per-thread control flow (the
        traditional per-thread processing the paper argues against), the warp
        serializes the divergent paths.  We charge the per-lane instruction
        count multiplied by the number of distinct active lanes, which is the
        worst-case serialization the paper's WCWS strategy avoids.
        """
        self.counters.warp_instructions += int(instructions_per_lane) * int(active_lanes)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    @property
    def lanes(self) -> np.ndarray:
        """Array of lane indices 0..31 (shared read-only buffer)."""
        return _LANES

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Warp(id={self.warp_id})"
