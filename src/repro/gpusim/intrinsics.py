"""Pure (stateless) warp-wide intrinsic helpers.

These mirror the CUDA primitives the paper's pseudocode is written in:
``__ballot``, ``__ffs``, ``__popc`` and lane-mask construction.  The stateful
(instruction-counting) versions live on :class:`repro.gpusim.warp.Warp`; the
functions here are the underlying bit manipulations, kept separate so they can
be unit- and property-tested in isolation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["ballot_from_bools", "first_set_lane", "ffs", "popc", "lane_mask", "set_lanes"]

_UINT32_MASK = 0xFFFFFFFF


#: Per-lane bit weights used to vectorize ballot construction.
_LANE_WEIGHTS = (np.uint64(1) << np.arange(32, dtype=np.uint64))


def ballot_from_bools(predicates: Sequence[bool] | np.ndarray) -> int:
    """Build a 32-bit ballot mask: bit *i* is set iff lane *i*'s predicate holds.

    Equivalent to CUDA's ``__ballot_sync(0xffffffff, pred)``.
    """
    arr = np.asarray(predicates, dtype=bool)
    if arr.ndim != 1 or arr.size > 32:
        raise ValueError(f"a ballot takes at most 32 lane predicates, got shape {arr.shape}")
    return int(arr @ _LANE_WEIGHTS[: arr.size]) & _UINT32_MASK


def ffs(mask: int) -> int:
    """CUDA ``__ffs``: 1-based position of the least-significant set bit, 0 if none."""
    mask &= _UINT32_MASK
    if mask == 0:
        return 0
    return (mask & -mask).bit_length()


def first_set_lane(mask: int) -> int:
    """Lane index (0-based) of the least-significant set bit, or -1 if the mask is empty.

    This is the ``__ffs(mask) - 1`` idiom used throughout the paper's
    pseudocode to pick the next work-queue entry or the found/destination lane.
    """
    return ffs(mask) - 1


def popc(mask: int) -> int:
    """CUDA ``__popc``: number of set bits in a 32-bit mask."""
    return bin(mask & _UINT32_MASK).count("1")


def lane_mask(lanes: Iterable[int]) -> int:
    """Build a mask with the given lane indices set (helper for VALID_KEY_MASK etc.)."""
    mask = 0
    for lane in lanes:
        if not 0 <= lane < 32:
            raise ValueError(f"lane index out of range: {lane}")
        mask |= 1 << lane
    return mask


def set_lanes(mask: int) -> list[int]:
    """Return the sorted list of lane indices set in ``mask`` (inverse of lane_mask)."""
    mask &= _UINT32_MASK
    return [lane for lane in range(32) if mask & (1 << lane)]
