"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(this environment has no network, so ``pip install -e .`` cannot build a
wheel; the repository instead ships a ``.pth``-style path insertion here and
documents the offline install in the README).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "smoke: fast high-signal subset run by scripts/smoke.sh "
        "(pytest -m smoke) to keep the documented commands working",
    )
