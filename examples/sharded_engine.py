#!/usr/bin/env python3
"""Sharded engine demo: scale the slab hash across independent devices.

Builds the same workload through one unsharded :class:`repro.SlabHash` and
through a 4-shard :class:`repro.ShardedSlabHash` (each shard an independent
table on its own simulated device), verifies the results are identical, and
prints the modelled throughput of both — the sharded engine's time is the
slowest shard's time, because the shards model hardware running in parallel.

Run:  python examples/sharded_engine.py
"""

import numpy as np

from repro import Device, ShardedSlabHash, SlabHash
from repro.perf.metrics import measure_phase
from repro.workloads.distributions import GAMMA_40_UPDATES, build_concurrent_workload
from repro.workloads.generators import unique_random_keys, values_for_keys

NUM_ELEMENTS = 4_000
NUM_SHARDS = 4
UTILIZATION = 0.6
PAPER_OPS = 2**22  # report at the paper's workload size


def main() -> None:
    keys = unique_random_keys(NUM_ELEMENTS, seed=1)
    values = values_for_keys(keys)

    # --- One unsharded table: the paper's single-GPU setting. -----------
    device = Device()
    single = SlabHash(
        SlabHash.buckets_for_utilization(NUM_ELEMENTS, UTILIZATION), device=device, seed=42
    )
    single_build = measure_phase(
        device, lambda: single.bulk_build(keys, values),
        num_ops=NUM_ELEMENTS, scale_to_ops=PAPER_OPS,
    )
    print(f"1 shard : build {single_build.mops:7.1f} M ops/s (modelled)")

    # --- The sharded engine: hash-partitioned across 4 devices. ---------
    engine = ShardedSlabHash.for_utilization(
        NUM_SHARDS, NUM_ELEMENTS, UTILIZATION, policy="hash", seed=42
    )
    build = engine.measure(
        lambda: engine.bulk_build(keys, values), scale_to_ops=PAPER_OPS, label="build"
    )
    print(f"{NUM_SHARDS} shards: build {build.mops:7.1f} M ops/s "
          f"(speedup {build.mops / single_build.mops:.2f}x, "
          f"load imbalance {build.load_imbalance:.3f})")

    # --- Same answers, shard count notwithstanding. ----------------------
    queries = np.concatenate([keys[: NUM_ELEMENTS // 2], keys[: 16] + 1])
    assert np.array_equal(engine.bulk_search(queries), single.bulk_search(queries))
    print(f"bulk_search results identical to the unsharded table "
          f"({len(queries)} queries); {len(engine)} elements across "
          f"{engine.num_shards} shards {engine.shard_sizes().tolist()}")

    # --- A mixed concurrent batch, Figure-7 style. -----------------------
    workload = build_concurrent_workload(GAMMA_40_UPDATES, NUM_ELEMENTS, keys, seed=7)
    mixed = engine.measure(
        lambda: engine.concurrent_batch(
            workload.op_codes, workload.keys, workload.values, scheduler_seed=11
        ),
        scale_to_ops=PAPER_OPS,
        label="mixed",
    )
    print(f"{NUM_SHARDS} shards: mixed {mixed.mops:7.1f} M ops/s "
          f"({workload.distribution.describe()}; "
          f"parallel speedup {mixed.parallel_speedup:.2f}x over serial shards)")

    # --- The aggregate counters are the sum of the shard counters. -------
    agg = mixed.aggregate
    print(f"aggregate events: {agg.coalesced_read_transactions} coalesced reads, "
          f"{agg.total_atomics} atomics, {agg.kernel_launches} kernel launches")


if __name__ == "__main__":
    main()
