#!/usr/bin/env python3
"""Concurrent mixed workloads: insertions, deletions and searches in one batch.

Reproduces the paper's Section VI-C scenario at demo scale: a table is built
with an initial set of elements, then batches drawn from an operation
distribution Gamma = (insert, delete, search-hit, search-miss) are executed
*truly concurrently* — every operation type mixed within warps, warp
procedures interleaved by a seeded scheduler — and the modelled throughput is
reported per distribution.

Run:  python examples/concurrent_workload.py
"""

import numpy as np

from repro import Device, SlabHash
from repro.core import constants as C
from repro.gpusim.scheduler import WarpScheduler
from repro.perf.metrics import measure_phase
from repro.workloads.distributions import PAPER_DISTRIBUTIONS, build_concurrent_workload
from repro.workloads.generators import unique_random_keys, values_for_keys


def run_distribution(distribution, initial_keys, ops_per_batch, num_batches, seed):
    device = Device()
    table = SlabHash(
        SlabHash.buckets_for_utilization(len(initial_keys), 0.5),
        device=device,
        seed=seed,
    )
    table.bulk_build(initial_keys, values_for_keys(initial_keys))

    total_ops = 0
    total_seconds = 0.0
    found = 0
    searches = 0
    current_keys = initial_keys
    for batch_index in range(num_batches):
        workload = build_concurrent_workload(
            distribution, ops_per_batch, current_keys, seed=seed + batch_index
        )
        scheduler = WarpScheduler(seed=seed + 100 + batch_index)
        measurement = measure_phase(
            device,
            lambda w=workload, s=scheduler: table.concurrent_batch(
                w.op_codes, w.keys, w.values, scheduler=s
            ),
            num_ops=len(workload),
            scale_to_ops=2**22,
        )
        total_ops += len(workload)
        total_seconds += measurement.seconds * len(workload) / 2**22
        results = table.bulk_search(workload.keys[workload.op_codes == C.OP_SEARCH])
        searches += len(results)
        found += int(np.sum(results != C.SEARCH_NOT_FOUND))
        # Keys inserted in this batch become "existing" for the next one.
        inserted = workload.keys[workload.op_codes == C.OP_INSERT]
        deleted = workload.keys[workload.op_codes == C.OP_DELETE]
        current_keys = np.setdiff1d(np.union1d(current_keys, inserted), deleted)

    rate = total_ops / total_seconds / 1e6 if total_seconds else float("nan")
    return table, rate, found, searches


def main() -> None:
    initial_keys = unique_random_keys(4_000, seed=3)
    print(f"initial table: {len(initial_keys)} elements\n")
    print(f"{'distribution':<30} {'M ops/s':>10} {'final n':>9} {'utilization':>12}")
    for distribution in PAPER_DISTRIBUTIONS:
        table, rate, found, searches = run_distribution(
            distribution, initial_keys, ops_per_batch=2_048, num_batches=3, seed=11
        )
        print(
            f"{distribution.describe():<30} {rate:>10.1f} {len(table):>9} "
            f"{table.memory_utilization():>11.1%}"
        )
    print(
        "\nAs in Fig. 7a: throughput improves as the update fraction shrinks, because "
        "updates (one CAS plus possible slab allocation) cost more than searches."
    )


if __name__ == "__main__":
    main()
