#!/usr/bin/env python3
"""Dynamic graph analytics on top of the slab hash.

The paper's conclusion names dynamic graph analytics as a target application
for dynamic GPU data structures.  This example maintains the edge set of an
evolving undirected graph in two slab hashes:

* an *adjacency* table in duplicates mode — key = vertex, value = neighbour —
  so SEARCHALL(v) returns v's current neighbourhood, and
* an *edge* table in unique-keys mode — key = encoded (u, v) pair — giving
  O(1) edge-existence checks and making edge insertion idempotent.

A random edge stream (insertions and deletions) is applied, degree queries and
triangle counts are answered on the fly, and the result is cross-checked
against networkx.

Run:  python examples/dynamic_graph.py
"""

import numpy as np

try:
    import networkx as nx
except ImportError:  # pragma: no cover - networkx is installed in CI
    nx = None

from repro import SlabHash
from repro.core import constants as C


class DynamicGraph:
    """An undirected dynamic graph backed by slab hashes."""

    def __init__(self, max_vertices: int = 1 << 15, seed: int = 0) -> None:
        if max_vertices > 1 << 15:
            raise ValueError("vertex ids must fit in 15 bits for the edge encoding")
        self.max_vertices = max_vertices
        self.adjacency = SlabHash(1024, unique_keys=False, seed=seed)
        self.edges = SlabHash(2048, unique_keys=True, seed=seed + 1)

    # -- edge encoding ---------------------------------------------------- #
    def _edge_key(self, u: int, v: int) -> int:
        lo, hi = (u, v) if u < v else (v, u)
        return (hi << 15) | lo

    # -- mutations --------------------------------------------------------- #
    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge (u, v); returns False if it already existed."""
        if u == v:
            return False
        key = self._edge_key(u, v)
        if self.edges.search(key) is not None:
            return False
        self.edges.insert(key, 1)
        self.adjacency.insert(u, v)
        self.adjacency.insert(v, u)
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete edge (u, v); returns False if it was not present."""
        key = self._edge_key(u, v)
        if self.edges.search(key) is None:
            return False
        self.edges.delete(key)
        # Remove one copy of each direction from the adjacency multimap.
        self._remove_adjacency(u, v)
        self._remove_adjacency(v, u)
        return True

    def _remove_adjacency(self, u: int, v: int) -> None:
        neighbours = self.adjacency.search_all(u)
        self.adjacency.delete_all(u)
        neighbours.remove(v)
        for w in neighbours:
            self.adjacency.insert(u, w)

    # -- queries ----------------------------------------------------------- #
    def has_edge(self, u: int, v: int) -> bool:
        return self.edges.search(self._edge_key(u, v)) is not None

    def neighbours(self, u: int) -> list[int]:
        return sorted(self.adjacency.search_all(u))

    def degree(self, u: int) -> int:
        return len(self.adjacency.search_all(u))

    def num_edges(self) -> int:
        return len(self.edges)

    def triangles_through(self, u: int) -> int:
        """Count triangles incident to vertex ``u`` using edge-existence queries."""
        neighbours = self.neighbours(u)
        count = 0
        for i, a in enumerate(neighbours):
            for b in neighbours[i + 1:]:
                if self.has_edge(a, b):
                    count += 1
        return count

    def compact(self) -> None:
        """Reclaim slabs fragmented by edge deletions (FLUSH on both tables)."""
        self.adjacency.flush()
        self.edges.flush()


def main() -> None:
    rng = np.random.default_rng(17)
    num_vertices = 400
    graph = DynamicGraph(seed=23)
    reference = nx.Graph() if nx is not None else None

    # Evolving edge stream: 3000 insertions mixed with 600 deletions.
    inserted = []
    for step in range(3_600):
        if step % 6 == 5 and inserted:
            index = int(rng.integers(len(inserted)))
            u, v = inserted.pop(index)
            graph.remove_edge(u, v)
            if reference is not None and reference.has_edge(u, v):
                reference.remove_edge(u, v)
        else:
            u, v = int(rng.integers(num_vertices)), int(rng.integers(num_vertices))
            if u != v and graph.add_edge(u, v):
                inserted.append((u, v))
                if reference is not None:
                    reference.add_edge(u, v)

    print(f"graph after the stream: {graph.num_edges()} edges")
    sample = [int(v) for v in rng.choice(num_vertices, size=5, replace=False)]
    for vertex in sample:
        print(f"  vertex {vertex:4d}: degree {graph.degree(vertex):3d}, "
              f"triangles through it {graph.triangles_through(vertex):3d}")

    graph.compact()
    print(f"after FLUSH compaction: adjacency utilization "
          f"{graph.adjacency.memory_utilization():.1%}, "
          f"edge-table utilization {graph.edges.memory_utilization():.1%}")

    if reference is not None:
        assert graph.num_edges() == reference.number_of_edges()
        for vertex in sample:
            assert graph.degree(vertex) == reference.degree(vertex)
            assert graph.neighbours(vertex) == sorted(reference.neighbors(vertex))
            assert graph.triangles_through(vertex) == sum(
                1 for a in reference.neighbors(vertex) for b in reference.neighbors(vertex)
                if a < b and reference.has_edge(a, b)
            )
        print("cross-check against networkx: OK")


if __name__ == "__main__":
    main()
