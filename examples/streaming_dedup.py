#!/usr/bin/env python3
"""Streaming de-duplication with SlabSet (a key-only slab hash).

A classic dynamic-hash-table workload the paper's introduction motivates:
an unbounded stream of records arrives in batches, and each batch must be
filtered down to the records never seen before — which requires a structure
that supports concurrent membership queries *and* insertions without being
rebuilt (a static table would have to be reconstructed after every batch).

The example processes a synthetic stream with a configurable duplicate rate,
reports per-batch dedup statistics and modelled throughput, and periodically
compacts the set after retiring old keys.

Run:  python examples/streaming_dedup.py
"""

import numpy as np

from repro.core.slab_set import SlabSet
from repro.perf.metrics import measure_phase
from repro.workloads.generators import unique_random_keys


def make_stream(num_batches, batch_size, duplicate_rate, seed):
    """A stream of record ids where ``duplicate_rate`` of each batch repeats old ids."""
    rng = np.random.default_rng(seed)
    fresh_pool = unique_random_keys(num_batches * batch_size, seed=seed)
    seen = np.empty(0, dtype=np.uint32)
    cursor = 0
    for _ in range(num_batches):
        n_dup = int(batch_size * duplicate_rate) if seen.size else 0
        n_new = batch_size - n_dup
        new_ids = fresh_pool[cursor : cursor + n_new]
        cursor += n_new
        dup_ids = seen[rng.integers(0, seen.size, size=n_dup)] if n_dup else np.empty(0, np.uint32)
        batch = np.concatenate([new_ids, dup_ids]).astype(np.uint32)
        rng.shuffle(batch)
        seen = np.concatenate([seen, new_ids])
        yield batch


def main() -> None:
    batch_size = 2_048
    num_batches = 8
    duplicate_rate = 0.35

    dedup = SlabSet(num_buckets=1024, seed=7)
    total_seen, total_unique, modelled_seconds = 0, 0, 0.0

    print(f"{'batch':>5} {'records':>8} {'new':>7} {'dups':>7} {'M ops/s':>9} {'set size':>9}")
    for index, batch in enumerate(make_stream(num_batches, batch_size, duplicate_rate, seed=3)):
        def process(batch=batch):
            fresh_mask = ~dedup.contains_many(batch)
            fresh = np.unique(batch[fresh_mask])
            dedup.update(fresh)
            return fresh

        measurement = measure_phase(
            dedup.device, process, num_ops=2 * len(batch), scale_to_ops=2**22
        )
        fresh_count = len(dedup) - total_unique
        total_unique = len(dedup)
        total_seen += len(batch)
        modelled_seconds += measurement.seconds * (2 * len(batch)) / 2**22
        print(f"{index:>5} {len(batch):>8} {fresh_count:>7} {len(batch) - fresh_count:>7} "
              f"{measurement.mops:>9.1f} {total_unique:>9}")

        # Retire a slice of old keys every few batches and compact.
        if index % 3 == 2:
            stale = np.fromiter((k for i, k in enumerate(dedup) if i % 4 == 0), dtype=np.uint32)
            dedup.discard_many(stale)
            dedup.flush()
            total_unique = len(dedup)

    rate = total_seen * 2 / modelled_seconds / 1e6
    print(f"\nprocessed {total_seen} records, {total_unique} unique ids retained")
    print(f"aggregate modelled rate (1 membership query + conditional insert per record): "
          f"{rate:.0f} M ops/s")
    print(f"set memory utilization after compaction: {dedup.memory_utilization():.1%}")


if __name__ == "__main__":
    main()
