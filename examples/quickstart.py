#!/usr/bin/env python3
"""Quickstart: build a slab hash, query it, mutate it, compact it.

This walks through the public API of :class:`repro.SlabHash` — the dynamic
GPU hash table of Ashkiani et al. (IPDPS 2018) running on the warp-level
simulator substrate — and prints the memory-utilization / slab-count
statistics the paper reasons about.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Device, SlabHash
from repro.gpusim.costmodel import CostModel
from repro.perf.metrics import measure_phase
from repro.workloads.generators import unique_random_keys, values_for_keys


def main() -> None:
    num_elements = 5_000
    target_utilization = 0.6

    # 1. Size the table: pick the bucket count whose expected memory
    #    utilization matches the target (the Fig. 4c relation).
    num_buckets = SlabHash.buckets_for_utilization(num_elements, target_utilization)
    device = Device()  # a simulated Tesla K40c
    table = SlabHash(num_buckets, device=device, seed=42)
    print(f"created SlabHash with {num_buckets} buckets "
          f"(target utilization {target_utilization:.0%})")

    # 2. Bulk-build from random key-value pairs.  In the slab hash a bulk
    #    build is just a batch of dynamic insertions.
    keys = unique_random_keys(num_elements, seed=1)
    values = values_for_keys(keys)
    build = measure_phase(device, lambda: table.bulk_build(keys, values),
                          num_ops=num_elements, scale_to_ops=2**22)
    print(f"bulk build:   {build.mops:7.1f} M insertions/s (modelled, paper-scale)")

    # 3. Bulk searches: all queries present, then none present.
    hits = keys
    misses = (keys.astype(np.uint64) + 2**31).astype(np.uint32)
    search_all = measure_phase(device, lambda: table.bulk_search(hits),
                               num_ops=num_elements, scale_to_ops=2**22)
    search_none = measure_phase(device, lambda: table.bulk_search(misses),
                                num_ops=num_elements, scale_to_ops=2**22)
    print(f"search (hit): {search_all.mops:7.1f} M queries/s")
    print(f"search (miss):{search_none.mops:7.1f} M queries/s")

    # 4. Point operations.
    key = int(keys[0])
    print(f"search({key}) -> {table.search(key)}")
    table.insert(key, 123456)           # REPLACE: overwrites the value
    print(f"after replace  -> {table.search(key)}")
    table.delete(key)
    print(f"after delete   -> {table.search(key)}")

    # 5. Introspection: the quantities the paper's analysis is built on.
    print(f"stored elements     : {len(table)}")
    print(f"total slabs         : {table.total_slabs()}")
    print(f"average slab count  : {table.beta():.2f} (beta = n / (M*B))")
    print(f"memory utilization  : {table.memory_utilization():.1%} "
          f"(ceiling {table.config.max_memory_utilization:.1%})")

    # 6. Delete a third of the keys and compact with FLUSH.
    table.bulk_delete(keys[::3])
    before = table.total_slabs()
    released = sum(r.slabs_released for r in table.flush())
    print(f"flush released {released} of {before} slabs; "
          f"utilization now {table.memory_utilization():.1%}")

    # 7. Where did the modelled time go?
    breakdown = CostModel(device.spec).elapsed(search_all.counters)
    print(f"search bottleneck   : {breakdown.bottleneck} "
          f"(memory {breakdown.memory_time*1e3:.2f} ms, "
          f"atomics {breakdown.atomic_time*1e3:.2f} ms, "
          f"compute {breakdown.compute_time*1e3:.2f} ms per 2^22 queries)")


if __name__ == "__main__":
    main()
