#!/usr/bin/env python3
"""SlabAlloc versus CUDA-malloc-like and Halloc-like allocators (Section V).

The slab hash's warp-cooperative work sharing strategy produces an allocation
pattern that general-purpose GPU allocators handle poorly: many independent
fixed-size (128-byte) allocations issued one at a time per warp.  This example
drives all three allocators with that pattern, prints the modelled allocation
rates next to the paper's measured numbers, and demonstrates SlabAlloc's
allocate/deallocate correctness under churn.

Run:  python examples/allocator_showdown.py
"""

import numpy as np

from repro.allocators.baselines import CudaMallocAllocator, HallocLikeAllocator
from repro.core.config import SlabAllocConfig
from repro.core.slab_alloc import SlabAlloc
from repro.gpusim.device import Device
from repro.gpusim.warp import Warp
from repro.perf.figures import allocator_comparison
from repro.perf.report import PAPER_REFERENCE, format_table


def churn_demo() -> None:
    """Allocate/free churn on SlabAlloc: unique addresses, clean recycling."""
    device = Device()
    alloc = SlabAlloc(device, SlabAllocConfig(4, 32, 256), seed=9)
    warps = [Warp(i, device.counters) for i in range(8)]
    rng = np.random.default_rng(1)

    live = []
    for step in range(20_000):
        if live and rng.random() < 0.4:
            alloc.deallocate(warps[step % 8], live.pop(rng.integers(len(live))))
        else:
            live.append(alloc.warp_allocate(warps[step % 8]))
    assert len(set(live)) == len(live)
    print(f"churn demo: {device.counters.allocations} allocations, "
          f"{device.counters.deallocations} deallocations, "
          f"{alloc.allocated_units} live units, "
          f"{device.counters.resident_changes} resident changes, "
          f"occupancy {alloc.occupancy():.1%}\n")


def main() -> None:
    churn_demo()

    result = allocator_comparison(sim_allocations=2**13)
    rows = [
        ["SlabAlloc", f"{result.extra['slaballoc_mops']:.0f}",
         f"{PAPER_REFERENCE['slaballoc_rate_mops']:.0f}"],
        ["Halloc (modelled)", f"{result.extra['halloc_mops']:.1f}",
         f"{PAPER_REFERENCE['halloc_rate_mops']:.1f}"],
        ["CUDA malloc (modelled)", f"{result.extra['cuda_malloc_mops']:.1f}",
         f"{PAPER_REFERENCE['cuda_malloc_rate_mops']:.1f}"],
    ]
    print(format_table(["allocator", "this repo (M slabs/s)", "paper (M slabs/s)"], rows))
    print(f"\nSlabAlloc speedup over Halloc: {result.extra['slaballoc_over_halloc']:.0f}x "
          f"(paper: ~37x); over CUDA malloc: {result.extra['slaballoc_over_malloc']:.0f}x")


if __name__ == "__main__":
    main()
