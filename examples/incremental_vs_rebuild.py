#!/usr/bin/env python3
"""Incremental insertion (slab hash) versus rebuild-from-scratch (static cuckoo).

The motivating scenario of the paper's Figure 6: a table receives periodic
batches of new elements.  A static hash table (CUDPP's cuckoo hashing) must be
rebuilt from scratch each time; the slab hash simply inserts the new batch
into the existing structure.  This example runs both strategies on the same
stream of batches and reports the cumulative modelled time and final speedup.

Run:  python examples/incremental_vs_rebuild.py
"""

from repro.baselines.cuckoo import CuckooHashTable
from repro.core.slab_hash import SlabHash
from repro.gpusim.device import Device
from repro.perf.metrics import measure_phase
from repro.workloads.generators import split_batches, unique_random_keys, values_for_keys


def main() -> None:
    total_elements = 8_192
    batch_size = 512
    final_utilization = 0.65
    paper_scale = 2_000_000 / total_elements  # report times at the paper's 2 M-element scale

    keys = unique_random_keys(total_elements, seed=5)
    values = values_for_keys(keys)
    batches = split_batches(keys, batch_size)
    print(f"{len(batches)} batches of {batch_size} elements "
          f"(reported at the paper's 2 M-element scale)\n")

    # --- Dynamic: one slab hash, incrementally extended. -------------------
    device = Device()
    table = SlabHash(
        SlabHash.buckets_for_utilization(total_elements, final_utilization),
        device=device, seed=6,
    )
    slab_time = 0.0
    for batch in batches:
        m = measure_phase(
            device,
            lambda b=batch: table.bulk_insert(b, values_for_keys(b)),
            num_ops=len(batch),
            scale_to_ops=int(len(batch) * paper_scale),
        )
        slab_time += m.seconds

    # --- Static: rebuild the cuckoo table from scratch after every batch. --
    cuckoo_time = 0.0
    inserted = 0
    for batch in batches:
        inserted += len(batch)
        cuckoo = CuckooHashTable.for_load_factor(inserted, final_utilization, seed=7)
        m = measure_phase(
            cuckoo.device,
            lambda k=keys[:inserted], v=values[:inserted], t=cuckoo: t.bulk_build(k, v),
            num_ops=inserted,
            scale_to_ops=int(inserted * paper_scale),
            working_set_bytes=int(inserted * paper_scale / final_utilization) * 8,
        )
        cuckoo_time += m.seconds

    print(f"slab hash, incremental batches : {slab_time * 1e3:8.2f} ms")
    print(f"cuckoo, rebuild per batch      : {cuckoo_time * 1e3:8.2f} ms")
    print(f"speedup                        : {cuckoo_time / slab_time:8.1f}x")
    print(f"\nfinal slab hash: {len(table)} elements, "
          f"utilization {table.memory_utilization():.1%}, "
          f"correctness check: {'OK' if (table.bulk_search(keys) == values).all() else 'FAIL'}")
    print("\nAs in Fig. 6: the gap widens as batches get smaller, because the rebuild "
          "cost grows with the total table size while the incremental cost only "
          "depends on the batch size.")


if __name__ == "__main__":
    main()
